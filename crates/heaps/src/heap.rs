//! A single heap in the hierarchy.

use crate::id::HeapId;
use crate::rwlock::HeapRwLock;
use hh_objmodel::{Chunk, ChunkId, ChunkStore, Header, ObjPtr};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

/// Allocation state of a heap: the chunk currently being bumped into plus the list of
/// all chunks belonging to the heap (its from-space).
#[derive(Debug, Default)]
struct AllocState {
    /// Chunk currently used for small-object allocation (always also present in `chunks`).
    current: Option<ChunkId>,
    /// All chunks owned by this heap, in allocation order.
    chunks: Vec<ChunkId>,
}

/// Point-in-time statistics for one heap.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Words of objects allocated in this heap since its creation or last collection.
    pub allocated_words: usize,
    /// Number of chunks currently owned.
    pub n_chunks: usize,
    /// Number of objects promoted *into* this heap.
    pub promoted_in_objects: usize,
    /// Words of objects promoted *into* this heap.
    pub promoted_in_words: usize,
    /// Number of collections performed on this heap.
    pub collections: usize,
}

/// One heap of the hierarchy.
///
/// A heap is a linked list of chunks with a bump allocator, a readers–writer lock, a
/// depth, and a `merged_into` forwarding link installed when the heap is joined into its
/// parent (after which it is no longer allocated into and all queries forward to the
/// parent).
pub struct Heap {
    id: HeapId,
    parent: HeapId,
    /// Epoch of the run this heap belongs to (0 = untracked). Fixed at creation;
    /// children inherit it from their parent. Chunks allocated by this heap carry
    /// the tag, which becomes their quarantine stamp at retirement.
    run_tag: u64,
    depth: AtomicU32,
    /// Raw id of the heap this one has been merged into, or `HeapId::NONE.raw()` while live.
    merged_into: AtomicU32,
    /// The paper's per-heap readers–writer lock.
    pub lock: HeapRwLock,
    alloc: Mutex<AllocState>,
    allocated_words: AtomicUsize,
    promoted_in_objects: AtomicUsize,
    promoted_in_words: AtomicUsize,
    collections: AtomicUsize,
}

impl Heap {
    #[cfg(test)]
    pub(crate) fn new(id: HeapId, parent: HeapId, depth: u32) -> Heap {
        Self::new_tagged(id, parent, depth, 0)
    }

    pub(crate) fn new_tagged(id: HeapId, parent: HeapId, depth: u32, run_tag: u64) -> Heap {
        Heap {
            id,
            parent,
            run_tag,
            depth: AtomicU32::new(depth),
            merged_into: AtomicU32::new(HeapId::NONE.raw()),
            lock: HeapRwLock::new(),
            alloc: Mutex::new(AllocState::default()),
            allocated_words: AtomicUsize::new(0),
            promoted_in_objects: AtomicUsize::new(0),
            promoted_in_words: AtomicUsize::new(0),
            collections: AtomicUsize::new(0),
        }
    }

    /// This heap's id.
    #[inline]
    pub fn id(&self) -> HeapId {
        self.id
    }

    /// The heap's parent at creation time (NONE for the root heap).
    #[inline]
    pub fn parent(&self) -> HeapId {
        self.parent
    }

    /// Epoch of the run this heap belongs to (0 = not epoch-tracked).
    #[inline]
    pub fn run_tag(&self) -> u64 {
        self.run_tag
    }

    /// Depth in the hierarchy: the root is at depth 0.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth.load(Ordering::Acquire)
    }

    /// The heap this one has been merged into, or NONE while it is still live.
    #[inline]
    pub fn merged_into(&self) -> HeapId {
        HeapId::from_raw(self.merged_into.load(Ordering::Acquire))
    }

    /// True if the heap has not been merged into its parent yet.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.merged_into().is_none()
    }

    /// Records that this heap has been merged into `target` (used by `join_heap`).
    pub(crate) fn set_merged_into(&self, target: HeapId) {
        self.merged_into.store(target.raw(), Ordering::Release);
    }

    /// Path compression helper used by the registry.
    pub(crate) fn compress_merged_into(&self, old: HeapId, new: HeapId) {
        let _ = self.merged_into.compare_exchange(
            old.raw(),
            new.raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Allocates an object with the given header in this heap (`freshObj`).
    ///
    /// Thread-safe: the owning task allocates here, but promotions performed by other
    /// tasks (holding this heap's WRITE lock) also allocate into ancestor heaps.
    ///
    /// Objects larger than the store's default chunk size get a dedicated chunk
    /// *without* displacing the current bump chunk, so a large-object detour does not
    /// abandon the partially filled chunk that subsequent small objects still fit in.
    pub fn alloc_obj(&self, store: &ChunkStore, header: Header) -> ObjPtr {
        let size = header.size_words();
        let mut st = self.alloc.lock();
        if store.needs_dedicated_chunk(header) {
            let (chunk, ptr) = store.alloc_dedicated_for_run(self.id.raw(), header, self.run_tag);
            st.chunks.push(chunk.id());
            self.allocated_words.fetch_add(size, Ordering::Relaxed);
            return ptr;
        }
        if let Some(cur) = st.current {
            let chunk = store.chunk(cur);
            if let Some(ptr) = store.alloc_in_chunk(chunk, header) {
                self.allocated_words.fetch_add(size, Ordering::Relaxed);
                return ptr;
            }
        }
        // Current chunk absent or full: get a new one big enough for this object.
        let chunk = store.alloc_chunk_for_run(self.id.raw(), size, self.run_tag);
        let ptr = store
            .alloc_in_chunk(&chunk, header)
            .expect("fresh chunk cannot be too small for the object it was sized for");
        st.current = Some(chunk.id());
        st.chunks.push(chunk.id());
        self.allocated_words.fetch_add(size, Ordering::Relaxed);
        ptr
    }

    /// Records an object of `words` words promoted into this heap (statistics only).
    pub fn note_promoted_in(&self, words: usize) {
        self.promoted_in_objects.fetch_add(1, Ordering::Relaxed);
        self.promoted_in_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Records `objects` objects totalling `words` words promoted into this heap in
    /// one batched pass (statistics only; the bulk form of
    /// [`Heap::note_promoted_in`]).
    pub fn note_promoted_in_batch(&self, objects: usize, words: usize) {
        self.promoted_in_objects
            .fetch_add(objects, Ordering::Relaxed);
        self.promoted_in_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Opens a batched allocation session on this heap: the allocation mutex is
    /// acquired **once** and held by the returned cursor until it is dropped, so a
    /// pass that allocates many objects (batched promotion evacuating a closure)
    /// pays one lock acquisition instead of one per object.
    ///
    /// While the cursor is alive, every other allocator of this heap
    /// ([`Heap::alloc_obj`], other cursors) blocks — callers must keep the session
    /// bounded (promotion already excludes `findMaster` readers via the heap WRITE
    /// lock; the allocation mutex is a leaf lock, so no ordering cycle is possible).
    /// Allocated words are published to the heap's accounting when the cursor drops.
    pub fn batch_alloc<'a>(&'a self, store: &'a ChunkStore) -> BatchAlloc<'a> {
        let state = self.alloc.lock();
        let current = state.current.map(|id| Arc::clone(store.chunk(id)));
        BatchAlloc {
            heap: self,
            store,
            state,
            current,
            dedicated: None,
            words: 0,
        }
    }

    /// Words allocated into this heap since creation or the last [`Heap::replace_chunks`].
    pub fn allocated_words(&self) -> usize {
        self.allocated_words.load(Ordering::Relaxed)
    }

    /// Snapshot of the chunk ids currently owned by this heap.
    pub fn chunks(&self) -> Vec<ChunkId> {
        self.alloc.lock().chunks.clone()
    }

    /// Number of chunks currently owned by this heap.
    pub fn n_chunks(&self) -> usize {
        self.alloc.lock().chunks.len()
    }

    /// Splices all of `child`'s chunks onto this heap's chunk list (`joinHeap`). The
    /// child's allocation state is emptied. Constant-time apart from the list splice.
    pub fn absorb_chunks_of(&self, child: &Heap) {
        let mut child_alloc = child.alloc.lock();
        let mut my_alloc = self.alloc.lock();
        my_alloc.chunks.append(&mut child_alloc.chunks);
        child_alloc.current = None;
        let w = child.allocated_words.swap(0, Ordering::Relaxed);
        self.allocated_words.fetch_add(w, Ordering::Relaxed);
    }

    /// Replaces this heap's chunk list wholesale (used by the collector to install the
    /// to-space as the new from-space). Returns the old chunk list.
    pub fn replace_chunks(
        &self,
        new_chunks: Vec<ChunkId>,
        new_allocated_words: usize,
    ) -> Vec<ChunkId> {
        let mut st = self.alloc.lock();
        let old = std::mem::replace(&mut st.chunks, new_chunks);
        st.current = st.chunks.last().copied();
        self.allocated_words
            .store(new_allocated_words, Ordering::Relaxed);
        self.collections.fetch_add(1, Ordering::Relaxed);
        old
    }

    /// Prepends collected to-space chunks to this heap's chunk list without touching
    /// the allocation cursor (used by the incremental collector's finalize: the
    /// mutator has been allocating fresh chunks into this heap since the roots-only
    /// pause, and its current bump chunk must stay current). Counts as a collection.
    pub fn adopt_collected_chunks(&self, mut collected: Vec<ChunkId>, collected_words: usize) {
        let mut st = self.alloc.lock();
        collected.append(&mut st.chunks);
        st.chunks = collected;
        // `current` still points at the mutator's bump chunk (or None if it has not
        // allocated since the flip), which sits at the tail where the cursor expects it.
        self.allocated_words
            .fetch_add(collected_words, Ordering::Relaxed);
        self.collections.fetch_add(1, Ordering::Relaxed);
    }

    /// Empties the heap's allocation state and returns every chunk it held. Unlike
    /// [`Heap::replace_chunks`] this does not count as a collection; it is used by
    /// the runtimes to dispose of a completed run's heap tree before recycling.
    pub fn take_all_chunks(&self) -> Vec<ChunkId> {
        let mut st = self.alloc.lock();
        st.current = None;
        self.allocated_words.store(0, Ordering::Relaxed);
        std::mem::take(&mut st.chunks)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            allocated_words: self.allocated_words(),
            n_chunks: self.n_chunks(),
            promoted_in_objects: self.promoted_in_objects.load(Ordering::Relaxed),
            promoted_in_words: self.promoted_in_words.load(Ordering::Relaxed),
            collections: self.collections.load(Ordering::Relaxed),
        }
    }
}

/// A batched allocation cursor on one heap (see [`Heap::batch_alloc`]): holds the
/// heap's allocation mutex for its whole lifetime and bump-allocates with the same
/// placement rules as [`Heap::alloc_obj`] (large objects get dedicated chunks without
/// displacing the current bump chunk).
pub struct BatchAlloc<'a> {
    heap: &'a Heap,
    store: &'a ChunkStore,
    state: parking_lot::MutexGuard<'a, AllocState>,
    /// The current bump chunk, held by reference so the per-object path performs no
    /// chunk-table lookup (mirrors `state.current`).
    current: Option<Arc<Chunk>>,
    /// The most recent dedicated large-object chunk (kept so `alloc_for_copy` can
    /// hand back a reference to the chunk the object landed in).
    dedicated: Option<Arc<Chunk>>,
    words: usize,
}

impl BatchAlloc<'_> {
    /// Allocates one object with `header` in the session's heap, fully initialized
    /// (pointer fields NULLed) as by [`Heap::alloc_obj`].
    pub fn alloc(&mut self, header: Header) -> ObjPtr {
        self.alloc_with(header, false).0
    }

    /// Allocates one object with `header`, initializing only the header and the
    /// forwarding slot (see [`ChunkStore::alloc_in_chunk_for_copy`]): the caller
    /// must store every field before the object becomes reachable. Returns the
    /// pointer plus the chunk it landed in, so evacuation loops can build views
    /// without a chunk-table lookup.
    pub fn alloc_for_copy(&mut self, header: Header) -> (ObjPtr, &Arc<Chunk>) {
        self.alloc_with(header, true)
    }

    fn alloc_with(&mut self, header: Header, for_copy: bool) -> (ObjPtr, &Arc<Chunk>) {
        let size = header.size_words();
        self.words += size;
        if self.store.needs_dedicated_chunk(header) {
            // Dedicated chunks never displace the bump chunk.
            let (chunk, ptr) =
                self.store
                    .alloc_dedicated_for_run(self.heap.id.raw(), header, self.heap.run_tag);
            self.state.chunks.push(chunk.id());
            self.dedicated = Some(chunk);
            return (ptr, self.dedicated.as_ref().expect("just set"));
        }
        if let Some(cur) = &self.current {
            let res = if for_copy {
                self.store.alloc_in_chunk_for_copy(cur, header)
            } else {
                self.store.alloc_in_chunk(cur, header)
            };
            if let Some(ptr) = res {
                return (ptr, self.current.as_ref().expect("checked above"));
            }
        }
        let chunk = self
            .store
            .alloc_chunk_for_run(self.heap.id.raw(), size, self.heap.run_tag);
        let res = if for_copy {
            self.store.alloc_in_chunk_for_copy(&chunk, header)
        } else {
            self.store.alloc_in_chunk(&chunk, header)
        };
        let ptr = res.expect("fresh chunk cannot be too small for the object it was sized for");
        self.state.current = Some(chunk.id());
        self.state.chunks.push(chunk.id());
        self.current = Some(chunk);
        (ptr, self.current.as_ref().expect("just set"))
    }

    /// Words allocated through this cursor so far.
    pub fn allocated_words(&self) -> usize {
        self.words
    }
}

impl Drop for BatchAlloc<'_> {
    fn drop(&mut self) {
        self.heap
            .allocated_words
            .fetch_add(self.words, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("id", &self.id)
            .field("parent", &self.parent)
            .field("depth", &self.depth())
            .field("merged_into", &self.merged_into())
            .field("allocated_words", &self.allocated_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_objmodel::ObjKind;

    fn store() -> ChunkStore {
        ChunkStore::new(64)
    }

    #[test]
    fn alloc_in_heap_tracks_words_and_chunks() {
        let store = store();
        let h = Heap::new(HeapId(0), HeapId::NONE, 0);
        let header = Header::new(6, 0, ObjKind::Tuple); // 8 words
        let mut ptrs = Vec::new();
        for _ in 0..20 {
            ptrs.push(h.alloc_obj(&store, header));
        }
        assert_eq!(h.allocated_words(), 20 * 8);
        assert!(h.n_chunks() >= 2, "64-word chunks should have overflowed");
        // All objects readable and distinct.
        ptrs.sort();
        ptrs.dedup();
        assert_eq!(ptrs.len(), 20);
        for p in ptrs {
            assert_eq!(store.view(p).n_fields(), 6);
            assert_eq!(store.chunk_owner(p), 0);
        }
    }

    #[test]
    fn huge_object_gets_its_own_chunk() {
        let store = store();
        let h = Heap::new(HeapId(3), HeapId::NONE, 0);
        let header = Header::new(1000, 0, ObjKind::ArrayData);
        let p = h.alloc_obj(&store, header);
        assert_eq!(store.view(p).n_fields(), 1000);
        assert_eq!(store.chunk_owner(p), 3);
    }

    #[test]
    fn large_object_detour_keeps_the_current_chunk() {
        let store = store(); // 64-word chunks
        let h = Heap::new(HeapId(0), HeapId::NONE, 0);
        let small = Header::new(2, 0, ObjKind::Tuple); // 4 words
        let first = h.alloc_obj(&store, small);
        // A large object must get a dedicated chunk…
        let big = h.alloc_obj(&store, Header::new(500, 0, ObjKind::ArrayData));
        // …and the next small object must land back in the first, partially filled
        // chunk rather than opening a third one.
        let second = h.alloc_obj(&store, small);
        assert_eq!(second.chunk(), first.chunk(), "current chunk was abandoned");
        assert_ne!(big.chunk(), first.chunk());
        assert_eq!(h.n_chunks(), 2);
    }

    #[test]
    fn absorb_moves_chunks_and_words() {
        let store = store();
        let parent = Heap::new(HeapId(0), HeapId::NONE, 0);
        let child = Heap::new(HeapId(1), HeapId(0), 1);
        let header = Header::new(2, 0, ObjKind::Tuple);
        for _ in 0..10 {
            child.alloc_obj(&store, header);
        }
        let child_words = child.allocated_words();
        let child_chunks = child.n_chunks();
        assert!(child_words > 0 && child_chunks > 0);
        parent.alloc_obj(&store, header);
        let parent_chunks_before = parent.n_chunks();
        parent.absorb_chunks_of(&child);
        assert_eq!(parent.n_chunks(), parent_chunks_before + child_chunks);
        assert_eq!(child.n_chunks(), 0);
        assert_eq!(child.allocated_words(), 0);
        assert_eq!(parent.allocated_words(), child_words + header.size_words());
    }

    #[test]
    fn replace_chunks_swaps_spaces() {
        let store = store();
        let h = Heap::new(HeapId(0), HeapId::NONE, 0);
        let header = Header::new(2, 0, ObjKind::Tuple);
        for _ in 0..10 {
            h.alloc_obj(&store, header);
        }
        let old = h.replace_chunks(vec![], 0);
        assert!(!old.is_empty());
        assert_eq!(h.n_chunks(), 0);
        assert_eq!(h.allocated_words(), 0);
        assert_eq!(h.stats().collections, 1);
        // Allocation after a flip starts a new chunk.
        let p = h.alloc_obj(&store, header);
        assert_eq!(store.view(p).n_fields(), 2);
        assert_eq!(h.n_chunks(), 1);
    }

    #[test]
    fn merged_into_transitions() {
        let h = Heap::new(HeapId(5), HeapId(2), 3);
        assert!(h.is_live());
        assert_eq!(h.parent(), HeapId(2));
        assert_eq!(h.depth(), 3);
        h.set_merged_into(HeapId(2));
        assert!(!h.is_live());
        assert_eq!(h.merged_into(), HeapId(2));
        h.compress_merged_into(HeapId(2), HeapId(0));
        assert_eq!(h.merged_into(), HeapId(0));
        // Compression with a stale old value is a no-op.
        h.compress_merged_into(HeapId(2), HeapId(7));
        assert_eq!(h.merged_into(), HeapId(0));
    }

    #[test]
    fn batch_alloc_matches_alloc_obj_placement() {
        let store = store(); // 64-word chunks
        let h = Heap::new(HeapId(0), HeapId::NONE, 0);
        let small = Header::new(2, 0, ObjKind::Tuple); // 4 words
        let big = Header::new(500, 0, ObjKind::ArrayData);
        let mut ptrs = Vec::new();
        {
            let mut batch = h.batch_alloc(&store);
            for _ in 0..10 {
                ptrs.push(batch.alloc(small));
            }
            // A large object takes a dedicated chunk without displacing the bump chunk…
            let huge = batch.alloc(big);
            let after = batch.alloc(small);
            assert_eq!(
                after.chunk(),
                ptrs.last().unwrap().chunk(),
                "bump chunk abandoned by the large-object detour"
            );
            assert_ne!(huge.chunk(), after.chunk());
            assert_eq!(batch.allocated_words(), 11 * 4 + big.size_words());
            ptrs.push(huge);
            ptrs.push(after);
        }
        // Words are published when the cursor drops; objects are live and distinct.
        assert_eq!(h.allocated_words(), 11 * 4 + big.size_words());
        ptrs.sort();
        ptrs.dedup();
        assert_eq!(ptrs.len(), 12);
        // Ordinary allocation continues from the batch's bump chunk.
        let next = h.alloc_obj(&store, small);
        assert_eq!(store.view(next).n_fields(), 2);
    }

    #[test]
    fn promotion_stats_accumulate() {
        let h = Heap::new(HeapId(0), HeapId::NONE, 0);
        h.note_promoted_in(4);
        h.note_promoted_in(6);
        let s = h.stats();
        assert_eq!(s.promoted_in_objects, 2);
        assert_eq!(s.promoted_in_words, 10);
    }
}
