//! Heap identifiers.

use std::fmt;

/// Identifier of a heap inside a [`HeapRegistry`](crate::registry::HeapRegistry).
///
/// Heap ids are small integers handed out in creation order; the raw value `u32::MAX`
/// is reserved for [`HeapId::NONE`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeapId(pub u32);

impl HeapId {
    /// "No heap": used for the root heap's parent and for unmerged heaps' forwarding link.
    pub const NONE: HeapId = HeapId(u32::MAX);

    /// True if this is [`HeapId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self == HeapId::NONE
    }

    /// Raw integer value (as stored in chunk owner slots).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Builds a heap id from its raw value.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        HeapId(raw)
    }
}

impl fmt::Debug for HeapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "HeapId(NONE)")
        } else {
            write!(f, "HeapId({})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(HeapId::NONE.is_none());
        assert!(!HeapId(0).is_none());
        assert_eq!(HeapId::from_raw(HeapId::NONE.raw()), HeapId::NONE);
    }

    #[test]
    fn raw_roundtrip() {
        for v in [0u32, 1, 7, 1_000_000] {
            assert_eq!(HeapId::from_raw(v).raw(), v);
        }
    }
}
