//! The per-heap readers–writer lock.
//!
//! The paper's algorithms acquire and release heap locks in non-lexically-scoped ways
//! (e.g. `findMaster` returns to its caller with a READ lock still held, and
//! `writePromote` locks a whole path of heaps bottom-up and unlocks it top-down), so a
//! guard-based `RwLock` API is a poor fit. [`HeapRwLock`] offers explicit
//! `lock_shared` / `unlock_shared` / `lock_exclusive` / `unlock_exclusive` operations —
//! the direct analogue of the paper's `lock(h, {READ, WRITE})` / `unlock(h)` — built on a
//! mutex and condition variable (no `unsafe`).
//!
//! Writers are given preference: once a writer is waiting, new readers block. This
//! matches the intent of promotion (a writer) not being starved by a stream of
//! `findMaster` readers.

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct State {
    readers: usize,
    writer: bool,
    waiting_writers: usize,
}

/// An explicitly lock/unlock-style readers–writer lock.
#[derive(Debug, Default)]
pub struct HeapRwLock {
    state: Mutex<State>,
    readers_cv: Condvar,
    writers_cv: Condvar,
}

impl HeapRwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock in READ (shared) mode. Blocks while a writer holds or awaits it.
    pub fn lock_shared(&self) {
        let mut st = self.state.lock();
        while st.writer || st.waiting_writers > 0 {
            self.readers_cv.wait(&mut st);
        }
        st.readers += 1;
    }

    /// Attempts to acquire the lock in READ mode without blocking.
    pub fn try_lock_shared(&self) -> bool {
        let mut st = self.state.lock();
        if st.writer || st.waiting_writers > 0 {
            false
        } else {
            st.readers += 1;
            true
        }
    }

    /// Releases one READ acquisition.
    ///
    /// # Panics
    /// Panics if the lock is not held in READ mode (a lock-discipline bug).
    pub fn unlock_shared(&self) {
        let mut st = self.state.lock();
        assert!(st.readers > 0, "unlock_shared without matching lock_shared");
        st.readers -= 1;
        if st.readers == 0 {
            self.writers_cv.notify_one();
        }
    }

    /// Acquires the lock in WRITE (exclusive) mode.
    pub fn lock_exclusive(&self) {
        let mut st = self.state.lock();
        st.waiting_writers += 1;
        while st.writer || st.readers > 0 {
            self.writers_cv.wait(&mut st);
        }
        st.waiting_writers -= 1;
        st.writer = true;
    }

    /// Attempts to acquire the lock in WRITE mode without blocking.
    pub fn try_lock_exclusive(&self) -> bool {
        let mut st = self.state.lock();
        if st.writer || st.readers > 0 {
            false
        } else {
            st.writer = true;
            true
        }
    }

    /// Releases a WRITE acquisition.
    ///
    /// # Panics
    /// Panics if the lock is not held in WRITE mode.
    pub fn unlock_exclusive(&self) {
        let mut st = self.state.lock();
        assert!(
            st.writer,
            "unlock_exclusive without matching lock_exclusive"
        );
        st.writer = false;
        if st.waiting_writers > 0 {
            self.writers_cv.notify_one();
        } else {
            self.readers_cv.notify_all();
        }
    }

    /// True if any thread currently holds the lock in either mode (for assertions).
    pub fn is_locked(&self) -> bool {
        let st = self.state.lock();
        st.writer || st.readers > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn shared_then_exclusive() {
        let l = HeapRwLock::new();
        l.lock_shared();
        l.lock_shared();
        assert!(!l.try_lock_exclusive());
        l.unlock_shared();
        assert!(!l.try_lock_exclusive());
        l.unlock_shared();
        assert!(l.try_lock_exclusive());
        assert!(!l.try_lock_shared());
        l.unlock_exclusive();
        assert!(!l.is_locked());
    }

    #[test]
    #[should_panic(expected = "unlock_shared")]
    fn unlock_without_lock_panics() {
        let l = HeapRwLock::new();
        l.unlock_shared();
    }

    #[test]
    #[should_panic(expected = "unlock_exclusive")]
    fn unlock_exclusive_without_lock_panics() {
        let l = HeapRwLock::new();
        l.unlock_exclusive();
    }

    #[test]
    fn writers_exclude_each_other() {
        let l = Arc::new(HeapRwLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            let counter = Arc::clone(&counter);
            let max_seen = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    l.lock_exclusive();
                    let c = counter.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(c, Ordering::SeqCst);
                    std::thread::yield_now();
                    counter.fetch_sub(1, Ordering::SeqCst);
                    l.unlock_exclusive();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "two writers inside the lock"
        );
    }

    #[test]
    fn readers_share_writers_exclude() {
        let l = Arc::new(HeapRwLock::new());
        let readers_inside = Arc::new(AtomicUsize::new(0));
        let writer_inside = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8 {
            let l = Arc::clone(&l);
            let readers_inside = Arc::clone(&readers_inside);
            let writer_inside = Arc::clone(&writer_inside);
            let violations = Arc::clone(&violations);
            handles.push(std::thread::spawn(move || {
                for i in 0..300 {
                    if (t + i) % 4 == 0 {
                        l.lock_exclusive();
                        writer_inside.fetch_add(1, Ordering::SeqCst);
                        if readers_inside.load(Ordering::SeqCst) != 0
                            || writer_inside.load(Ordering::SeqCst) != 1
                        {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        writer_inside.fetch_sub(1, Ordering::SeqCst);
                        l.unlock_exclusive();
                    } else {
                        l.lock_shared();
                        readers_inside.fetch_add(1, Ordering::SeqCst);
                        if writer_inside.load(Ordering::SeqCst) != 0 {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        readers_inside.fetch_sub(1, Ordering::SeqCst);
                        l.unlock_shared();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn waiting_writer_blocks_new_readers_but_eventually_everyone_runs() {
        let l = Arc::new(HeapRwLock::new());
        l.lock_shared();
        let l2 = Arc::clone(&l);
        let writer = std::thread::spawn(move || {
            l2.lock_exclusive();
            l2.unlock_exclusive();
        });
        // Give the writer time to start waiting; a new reader must now be refused.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !l.try_lock_shared(),
            "reader admitted past a waiting writer"
        );
        l.unlock_shared();
        writer.join().unwrap();
        assert!(l.try_lock_shared());
        l.unlock_shared();
    }
}
