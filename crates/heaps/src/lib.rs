//! # hh-heaps — the hierarchy of heaps
//!
//! This crate implements the *hierarchical heaps* substrate of Guatto et al. (PPoPP
//! 2018): a tree of heaps that mirrors the fork/join task tree. It provides the
//! heap-related low-level primitives of the paper's Figure 4:
//!
//! * [`HeapRegistry::new_child_heap`] / [`HeapRegistry::join_heap`] grow and shrink the
//!   hierarchy as tasks fork and join (`newChildHeap` / `joinHeap`);
//! * [`HeapRegistry::depth`] gives a heap's depth (`depth`);
//! * [`Heap::alloc_obj`] allocates a fresh object inside a specific heap (`freshObj`);
//! * [`HeapRegistry::heap_of`] maps an object pointer back to its (current) heap
//!   (`heapOf`), resolving any number of joins in (amortized) constant time;
//! * every heap carries a readers–writer lock ([`HeapRwLock`]) used by the mutation and
//!   promotion algorithms in `hh-runtime` (`lock` / `unlock`).
//!
//! Joining a heap into its parent is O(1): the child's chunk list is spliced onto the
//! parent's and the child records a `merged_into` forwarding link. `heap_of` follows
//! these links union-find style with path compression, so objects never move at joins —
//! one of the key properties the paper relies on ("joining heaps can be done without
//! physically copying data").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heap;
pub mod id;
pub mod registry;
pub mod rwlock;

pub use heap::{BatchAlloc, Heap, HeapStats};
pub use id::HeapId;
pub use registry::{EntanglementViolation, HeapRegistry};
pub use rwlock::HeapRwLock;
