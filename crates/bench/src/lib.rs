//! # hh-bench — Criterion benchmarks
//!
//! One benchmark target per table / figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). The targets use reduced problem sizes so `cargo bench
//! --workspace` completes in minutes; the `repro` binary in `hh-harness` runs the same
//! experiments at configurable scale and prints the paper-shaped tables.
//!
//! Shared helpers for the bench targets live here.

use hh_api::Runtime;
use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
use hh_runtime::{HhConfig, HhRuntime};
use hh_workloads::suite::{run_timed, BenchId, Params};

/// The problem-size parameters used by the Criterion targets.
pub fn bench_params() -> Params {
    Params {
        scale: 0.001,
        grain: 1024,
    }
}

/// Workers used for the "parallel" configurations in the Criterion targets.
pub fn bench_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Runs `bench` once on the named runtime and returns its checksum (the value is
/// returned so Criterion cannot optimize the run away).
pub fn run_once(runtime: &str, workers: usize, bench: BenchId, params: Params) -> u64 {
    match runtime {
        "seq" => {
            SeqRuntime::new()
                .run(|ctx| run_timed(ctx, bench, params))
                .checksum
        }
        "stw" => {
            StwRuntime::with_workers(workers)
                .run(|ctx| run_timed(ctx, bench, params))
                .checksum
        }
        "dlg" => {
            DlgRuntime::with_workers(workers)
                .run(|ctx| run_timed(ctx, bench, params))
                .checksum
        }
        "parmem" => {
            HhRuntime::new(HhConfig::with_workers(workers))
                .run(|ctx| run_timed(ctx, bench, params))
                .checksum
        }
        other => panic!("unknown runtime {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_once_works_for_every_runtime() {
        let p = Params {
            scale: 0.0002,
            grain: 512,
        };
        let expected = run_once("seq", 1, BenchId::Reduce, p);
        for rt in ["stw", "dlg", "parmem"] {
            assert_eq!(run_once(rt, 2, BenchId::Reduce, p), expected, "{rt}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown runtime")]
    fn unknown_runtime_panics() {
        let _ = run_once("nope", 1, BenchId::Fib, bench_params());
    }
}
