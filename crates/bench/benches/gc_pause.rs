//! GC v2 pause microbenchmark: forced collections of a 1000-object-per-task live
//! set, parallel team vs the serial `gc_workers = 1` ablation (A4).
//!
//! Each iteration builds `workers` × 1000 live cons cells (published into a pinned
//! pointer array, so the structure is spread across the fork tree the way real
//! workloads leave it) plus garbage litter, then times **only** the forced
//! collection (`iter_custom`). After the Criterion runs, a calibration pass prints
//! ns per copied word and the maximum pause from the runtime's own counters —
//! the two numbers the acceptance criteria are stated in.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_api::{ObjPtr, ParCtx, Runtime};
use hh_bench::bench_workers;
use hh_runtime::{HhConfig, HhRuntime};
use std::time::{Duration, Instant};

fn runtime(workers: usize, gc_workers: usize) -> HhRuntime {
    HhRuntime::new(HhConfig {
        n_workers: workers,
        gc_workers,
        // Only the forced collections run; the threshold never fires.
        gc_threshold_words: usize::MAX / 2,
        ..Default::default()
    })
}

/// Builds `tasks` lists of 1000 cells each in parallel, publishing every list into
/// a pinned pointer array, and returns that array (the collection's live set).
fn build_live<C: ParCtx>(ctx: &C, tasks: usize) -> ObjPtr {
    let published = ctx.alloc_ptr_array(tasks);
    ctx.pin(published);
    ctx.par_for(0..tasks, 1, |c, range| {
        for slot in range {
            let mut head = ObjPtr::NULL;
            for k in 0..1_000u64 {
                head = c.alloc_cons(ObjPtr::NULL, head, k);
                // Litter: dead by collection time.
                if k % 8 == 0 {
                    let _junk = c.alloc_data_array(8);
                }
            }
            c.write_ptr(published, slot, head);
        }
    });
    published
}

/// One timed forced collection over a freshly built live set.
fn timed_collection(rt: &HhRuntime, tasks: usize) -> Duration {
    rt.run(|ctx| {
        let live = build_live(ctx, tasks);
        let t0 = Instant::now();
        assert!(ctx.force_collect());
        let pause = t0.elapsed();
        ctx.unpin(live);
        pause
    })
}

fn gc_pause(c: &mut Criterion) {
    let workers = bench_workers();
    let mut group = c.benchmark_group("gc_pause");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));

    for (label, gc_workers) in [("parallel", 0usize), ("serial_a4", 1)] {
        group.bench_function(format!("subtree_1000x{workers}/{label}"), |b| {
            b.iter_custom(|iters| {
                let rt = runtime(workers, gc_workers);
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += timed_collection(&rt, workers);
                }
                total
            })
        });
    }
    group.finish();

    // Calibration pass: report ns / copied word and the max pause per mode from
    // the runtime's own counters (the units the GC v2 acceptance bar uses).
    for (label, gc_workers) in [("parallel", 0usize), ("serial_a4", 1)] {
        let rt = runtime(workers, gc_workers);
        let mut total = Duration::ZERO;
        for _ in 0..5 {
            total += timed_collection(&rt, workers);
        }
        let s = rt.stats();
        let ns_per_word = if s.gc_copied_words == 0 {
            0.0
        } else {
            total.as_nanos() as f64 / s.gc_copied_words as f64
        };
        println!(
            "gc_pause/{label}: {:.2} ns/copied-word over {} words, max pause {:.3} ms, \
             {} team collections, {} stolen blocks",
            ns_per_word,
            s.gc_copied_words,
            s.gc_max_pause_ns as f64 / 1e6,
            s.gc_parallel_collections,
            s.gc_steal_blocks,
        );
    }
}

criterion_group!(benches, gc_pause);
criterion_main!(benches);
