//! Join overhead — the cost of one fork/join in the common, *unstolen* case.
//!
//! This is the microbenchmark behind the scheduler v2 acceptance criterion: the
//! paper's design only works if an unstolen `forkjoin` is near-free, because the
//! work-first scheduler makes the unstolen case overwhelmingly common. Each sample
//! performs a long flat run of trivial joins on a **single-worker** pool/runtime (so
//! no branch can be stolen) and reports the per-join cost:
//!
//! * `pool/raw-join` — the bare scheduler primitive (stack job + Chase–Lev push/pop +
//!   sleeper check); the floor everything else builds on;
//! * `parmem/lazy-heaps` — the hierarchical runtime's `join` under the default lazy
//!   steal-time heap policy: no heap creation, no splice, just two contexts;
//! * `parmem/eager-heaps` — the v1 fork shape (two child heaps + two `join_heap`
//!   splices per fork), kept as ablation A2: the gap to `lazy-heaps` is what the
//!   steal-time policy buys;
//! * `stw/join` — the stop-the-world baseline's join (safepoint poll + root-registry
//!   registration per branch), for context.
//!
//! A multi-worker `parmem/lazy-heaps-P4` configuration is included to confirm the
//! unstolen fast path stays cheap when thieves *could* interfere.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hh_api::{ParCtx, Runtime};
use hh_baselines::StwRuntime;
use hh_runtime::{HhConfig, HhRuntime};
use hh_sched::Pool;
use std::time::{Duration, Instant};

/// Runs exactly `iters` trivial joins inside one root task and returns the elapsed
/// time (the `iter_custom` contract: one "iteration" is one join; the `run` entry cost
/// amortizes over the thousands of joins per sample).
fn per_join<R: Runtime>(rt: &R, iters: u64) -> Duration {
    rt.run(|ctx| {
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            let (a, b) = ctx.join(|_| 1u64, |_| 2u64);
            black_box(a + b);
        }
        start.elapsed()
    })
}

fn join_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(200));

    group.bench_function("pool/raw-join", |b| {
        let pool = Pool::new(1);
        b.iter_custom(|iters| {
            pool.run(|w| {
                let start = Instant::now();
                for _ in 0..iters.max(1) {
                    let (a, b) = w.join(|| 1u64, || 2u64);
                    black_box(a + b);
                }
                start.elapsed()
            })
        })
    });

    group.bench_function("parmem/lazy-heaps", |b| {
        let rt = HhRuntime::with_workers(1);
        b.iter_custom(|iters| per_join(&rt, iters));
    });

    group.bench_function("parmem/eager-heaps", |b| {
        let rt = HhRuntime::new(HhConfig::eager_heaps(1));
        b.iter_custom(|iters| per_join(&rt, iters));
    });

    group.bench_function("parmem/lazy-heaps-P4", |b| {
        let rt = HhRuntime::with_workers(4);
        b.iter_custom(|iters| per_join(&rt, iters));
    });

    group.bench_function("stw/join", |b| {
        let rt = StwRuntime::with_workers(1);
        b.iter_custom(|iters| per_join(&rt, iters));
    });

    group.finish();
}

criterion_group!(benches, join_overhead);
criterion_main!(benches);
