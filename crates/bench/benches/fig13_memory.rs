//! Figure 13 — memory consumption and inflation. Criterion measures time, so this
//! target times the full run while the peak-occupancy numbers themselves are printed
//! once per configuration (they are the quantity Figure 13 reports; `repro fig13`
//! produces the full table).

use criterion::{criterion_group, criterion_main, Criterion};
use hh_api::Runtime;
use hh_baselines::{SeqRuntime, StwRuntime};
use hh_bench::{bench_params, bench_workers};
use hh_runtime::HhRuntime;
use hh_workloads::suite::run_timed;
use hh_workloads::BenchId;
use std::hint::black_box;

fn memory(c: &mut Criterion) {
    let params = bench_params();
    let workers = bench_workers();
    let mut group = c.benchmark_group("fig13_memory");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for bench in [
        BenchId::Map,
        BenchId::MsortPure,
        BenchId::Tourney,
        BenchId::Dedup,
    ] {
        // Print the peak occupancies once (the actual Figure 13 quantity).
        let seq = SeqRuntime::new();
        seq.run(|ctx| run_timed(ctx, bench, params));
        let ms = seq.stats().peak_live_bytes();
        let stw = StwRuntime::with_workers(workers);
        stw.run(|ctx| run_timed(ctx, bench, params));
        let hh = HhRuntime::with_workers(workers);
        hh.run(|ctx| run_timed(ctx, bench, params));
        println!(
            "fig13 {}: Ms={:.1}MB  I_P(stw)={:.2}  I_P(parmem)={:.2}",
            bench.name(),
            ms as f64 / 1e6,
            stw.stats().peak_live_bytes() as f64 / ms.max(1) as f64,
            hh.stats().peak_live_bytes() as f64 / ms.max(1) as f64,
        );

        group.bench_function(format!("{}/parmem_full_run", bench.name()), |b| {
            b.iter(|| {
                let rt = HhRuntime::with_workers(workers);
                let out = rt.run(|ctx| run_timed(ctx, bench, params));
                black_box((out.checksum, rt.stats().peak_live_words))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, memory);
criterion_main!(benches);
