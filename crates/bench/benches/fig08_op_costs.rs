//! Figure 8 — per-operation cost of the memory operations on local, distant, and
//! promoted objects, measured on the hierarchical runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_api::{ObjKind, ParCtx, Runtime};
use hh_runtime::{HhConfig, HhRuntime};
use std::hint::black_box;

fn op_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_op_costs");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Local objects: allocate once, run each operation in a tight loop inside one task.
    let rt = HhRuntime::new(HhConfig::with_workers(2));
    for op in ["read_imm", "read_mut", "write_nonptr", "write_ptr_local"] {
        group.bench_function(format!("local/{op}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let obj = ctx.alloc(1, 3, ObjKind::Ref);
                    let target = ctx.alloc_ref_data(1);
                    let mut acc = 0u64;
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        match op {
                            "read_imm" => acc = acc.wrapping_add(ctx.read_imm(obj, 2)),
                            "read_mut" => acc = acc.wrapping_add(ctx.read_mut(obj, 2)),
                            "write_nonptr" => ctx.write_nonptr(obj, 2, acc),
                            _ => ctx.write_ptr(obj, 0, target),
                        }
                    }
                    black_box(acc);
                    start.elapsed()
                })
            });
        });
    }

    // Promoted objects: the object has a forwarding chain, so mutable accesses go
    // through `findMaster`.
    for op in ["read_mut", "write_nonptr"] {
        group.bench_function(format!("promoted/{op}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let holder = ctx.alloc_ref_ptr(hh_api::ObjPtr::NULL);
                    let stale = ctx
                        .join(
                            |cc| {
                                let o = cc.alloc(1, 3, ObjKind::Ref);
                                cc.write_nonptr(o, 2, 7);
                                cc.write_ptr(holder, 0, o);
                                o
                            },
                            |_| hh_api::ObjPtr::NULL,
                        )
                        .0;
                    let mut acc = 0u64;
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        match op {
                            "read_mut" => acc = acc.wrapping_add(ctx.read_mut(stale, 2)),
                            _ => ctx.write_nonptr(stale, 2, acc),
                        }
                    }
                    black_box(acc);
                    start.elapsed()
                })
            });
        });
    }

    // Promoting pointer writes: every iteration writes a freshly allocated child-local
    // object into a root-allocated cell, forcing a promotion.
    group.bench_function("distant/write_ptr_promoting", |b| {
        b.iter_custom(|iters| {
            rt.run(|ctx| {
                let cell = ctx.alloc_ref_ptr(hh_api::ObjPtr::NULL);
                let (elapsed, _) = ctx.join(
                    |cc| {
                        let start = std::time::Instant::now();
                        for _ in 0..iters {
                            let local = cc.alloc_ref_data(1);
                            cc.write_ptr(cell, 0, local);
                        }
                        start.elapsed()
                    },
                    |_| (),
                );
                elapsed
            })
        })
    });

    group.finish();
}

criterion_group!(benches, op_costs);
criterion_main!(benches);
