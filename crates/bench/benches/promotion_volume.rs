//! §4.4 — promotion volume on `map`: the DLG/Manticore-style baseline promotes the
//! results of stolen tasks while the hierarchical runtime promotes nothing.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_api::Runtime;
use hh_baselines::DlgRuntime;
use hh_bench::{bench_params, bench_workers};
use hh_runtime::HhRuntime;
use hh_workloads::suite::run_timed;
use hh_workloads::BenchId;
use std::hint::black_box;

fn promotion(c: &mut Criterion) {
    let params = bench_params();
    let workers = bench_workers();
    let mut group = c.benchmark_group("promotion_volume");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Report promoted bytes once per runtime (the §4.4 quantity).
    let dlg = DlgRuntime::with_workers(workers);
    dlg.run(|ctx| run_timed(ctx, BenchId::Map, params));
    let hh = HhRuntime::with_workers(workers);
    hh.run(|ctx| run_timed(ctx, BenchId::Map, params));
    println!(
        "promotion on map: dlg={:.2}MB ({} objects)  parmem={:.2}MB ({} objects)",
        dlg.stats().promoted_bytes() as f64 / 1e6,
        dlg.stats().promoted_objects,
        hh.stats().promoted_bytes() as f64 / 1e6,
        hh.stats().promoted_objects,
    );

    group.bench_function("map/dlg", |b| {
        b.iter(|| {
            let rt = DlgRuntime::with_workers(workers);
            let out = rt.run(|ctx| run_timed(ctx, BenchId::Map, params));
            black_box((out.checksum, rt.stats().promoted_words))
        })
    });
    group.bench_function("map/parmem", |b| {
        b.iter(|| {
            let rt = HhRuntime::with_workers(workers);
            let out = rt.run(|ctx| run_timed(ctx, BenchId::Map, params));
            black_box((out.checksum, rt.stats().promoted_words))
        })
    });
    group.finish();
}

criterion_group!(benches, promotion);
criterion_main!(benches);
