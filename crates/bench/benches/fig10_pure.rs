//! Figure 10 — the pure benchmarks on the sequential baseline, the stop-the-world
//! baseline, the DLG baseline, and the hierarchical runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_bench::{bench_params, bench_workers, run_once};
use hh_workloads::BenchId;
use std::hint::black_box;

fn pure_benchmarks(c: &mut Criterion) {
    let params = bench_params();
    let workers = bench_workers();
    let mut group = c.benchmark_group("fig10_pure");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for bench in BenchId::PURE {
        for runtime in ["seq", "stw", "dlg", "parmem"] {
            group.bench_function(format!("{}/{}", bench.name(), runtime), |b| {
                b.iter(|| black_box(run_once(runtime, workers, bench, params)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, pure_benchmarks);
criterion_main!(benches);
