//! Bulk vs. scalar array operations on the hierarchical runtime: the measurement
//! behind the ParCtx v2 redesign.
//!
//! Each pair of targets performs the same logical work — reading, writing, filling, or
//! copying a managed array — once through the scalar per-word operations and once
//! through the bulk slice operations. The scalar path pays one virtual call plus one
//! forwarding-chain check (and, on the slow path, one `findMaster` with a heap lock
//! round-trip) per 64-bit word; the bulk path resolves the master once per slice. The
//! ratio between each pair is the amortization win, both for plain arrays and for
//! promoted arrays whose every access goes through the forwarding chain.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_api::{ObjPtr, ParCtx, Runtime};
use hh_runtime::{HhConfig, HhRuntime};
use std::hint::black_box;
use std::time::Instant;

const LEN: usize = 4096;

fn bulk_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let rt = HhRuntime::new(HhConfig::with_workers(2));

    // Local (never-promoted) arrays.
    for (name, bulk) in [("scalar", false), ("bulk", true)] {
        group.bench_function(format!("read_local/{name}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let arr = ctx.alloc_data_array(LEN);
                    let mut buf = vec![0u64; LEN];
                    let start = Instant::now();
                    for _ in 0..iters {
                        if bulk {
                            ctx.read_mut_bulk(arr, 0, &mut buf);
                        } else {
                            for (k, slot) in buf.iter_mut().enumerate() {
                                *slot = ctx.read_mut(arr, k);
                            }
                        }
                        black_box(buf[LEN / 2]);
                    }
                    start.elapsed()
                })
            });
        });

        group.bench_function(format!("write_local/{name}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let arr = ctx.alloc_data_array(LEN);
                    let vals: Vec<u64> = (0..LEN as u64).collect();
                    let start = Instant::now();
                    for _ in 0..iters {
                        if bulk {
                            ctx.write_nonptr_bulk(arr, 0, &vals);
                        } else {
                            for (k, &v) in vals.iter().enumerate() {
                                ctx.write_nonptr(arr, k, v);
                            }
                        }
                    }
                    black_box(ctx.read_mut(arr, 1));
                    start.elapsed()
                })
            });
        });

        group.bench_function(format!("fill_local/{name}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let arr = ctx.alloc_data_array(LEN);
                    let start = Instant::now();
                    for i in 0..iters {
                        if bulk {
                            ctx.fill_nonptr(arr, 0, LEN, i);
                        } else {
                            for k in 0..LEN {
                                ctx.write_nonptr(arr, k, i);
                            }
                        }
                    }
                    black_box(ctx.read_mut(arr, 1));
                    start.elapsed()
                })
            });
        });

        group.bench_function(format!("copy_local/{name}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let src = ctx.alloc_data_array(LEN);
                    let dst = ctx.alloc_data_array(LEN);
                    ctx.fill_nonptr(src, 0, LEN, 99);
                    let start = Instant::now();
                    for _ in 0..iters {
                        if bulk {
                            ctx.copy_nonptr(src, 0, dst, 0, LEN);
                        } else {
                            for k in 0..LEN {
                                let v = ctx.read_mut(src, k);
                                ctx.write_nonptr(dst, k, v);
                            }
                        }
                    }
                    black_box(ctx.read_mut(dst, 1));
                    start.elapsed()
                })
            });
        });
    }

    // Promoted arrays: every access through the stale pointer walks the forwarding
    // chain, so this is where per-slice `findMaster` amortization matters most.
    for (name, bulk) in [("scalar", false), ("bulk", true)] {
        group.bench_function(format!("read_promoted/{name}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
                    let stale = ctx
                        .join(
                            |cc| {
                                let arr = cc.alloc_data_array(LEN);
                                cc.fill_nonptr(arr, 0, LEN, 5);
                                cc.write_ptr(cell, 0, arr); // promotes
                                arr
                            },
                            |_| ObjPtr::NULL,
                        )
                        .0;
                    let mut buf = vec![0u64; LEN];
                    let start = Instant::now();
                    for _ in 0..iters {
                        if bulk {
                            ctx.read_mut_bulk(stale, 0, &mut buf);
                        } else {
                            for (k, slot) in buf.iter_mut().enumerate() {
                                *slot = ctx.read_mut(stale, k);
                            }
                        }
                        black_box(buf[LEN / 2]);
                    }
                    start.elapsed()
                })
            });
        });

        group.bench_function(format!("write_promoted/{name}"), |b| {
            b.iter_custom(|iters| {
                rt.run(|ctx| {
                    let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
                    let stale = ctx
                        .join(
                            |cc| {
                                let arr = cc.alloc_data_array(LEN);
                                cc.write_ptr(cell, 0, arr); // promotes
                                arr
                            },
                            |_| ObjPtr::NULL,
                        )
                        .0;
                    let vals: Vec<u64> = (0..LEN as u64).collect();
                    let start = Instant::now();
                    for _ in 0..iters {
                        if bulk {
                            ctx.write_nonptr_bulk(stale, 0, &vals);
                        } else {
                            for (k, &v) in vals.iter().enumerate() {
                                ctx.write_nonptr(stale, k, v);
                            }
                        }
                    }
                    black_box(ctx.read_mut(stale, 1));
                    start.elapsed()
                })
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bulk_vs_scalar);
criterion_main!(benches);
