//! `promote_overhead` — batched transitive promotion (v2) vs the v1 per-object path.
//!
//! Each iteration runs one promoting pointer write: a child task (owning a fresh
//! heap under the eager per-fork configuration) builds a cons closure of N objects
//! and publishes its head into a parent-heap ref, which forces `writePromote` to
//! evacuate the whole closure. Only the `write_ptr` call is timed (`iter_custom`),
//! so the build cost does not dilute the comparison.
//!
//! v1 (`batched_promotion: false`) pays one registry allocation, one per-heap stats
//! update, and two counter increments per object; v2 batches all of it behind a
//! single allocation cursor and flushes counters once per pass. The acceptance bar
//! for promotion v2 is v2 ≥ 3× faster than v1 on the 1000-object closure.
//! The measurement helpers are shared with `repro promote`
//! (`hh_harness::measure::{promotion_runtime, time_promotions}`), so the bench and
//! the table always measure the same comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_harness::measure::{promotion_runtime, time_promotions};

fn bench_promote(c: &mut Criterion) {
    let mut group = c.benchmark_group("promote_overhead");
    group.sample_size(10);
    for &len in &[16usize, 1000] {
        for (name, batched) in [("v1-per-object", false), ("v2-batched", true)] {
            let rt = promotion_runtime(batched);
            group.bench_function(format!("{len}-obj-closure/{name}"), |b| {
                b.iter_custom(|iters| time_promotions(&rt, len, iters));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_promote);
criterion_main!(benches);
