//! Ablations (DESIGN.md A1/A2): the hierarchical runtime with its fast paths disabled,
//! and the promotion-heavy `usp-tree` benchmark, which isolates the cost of whole-path
//! locking during promotion.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_api::Runtime;
use hh_bench::{bench_params, bench_workers};
use hh_runtime::{HhConfig, HhRuntime};
use hh_workloads::suite::run_timed;
use hh_workloads::BenchId;
use std::hint::black_box;

fn ablations(c: &mut Criterion) {
    let params = bench_params();
    let workers = bench_workers();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // A1: fast paths on / off.
    for bench in [BenchId::Msort, BenchId::Usp] {
        for (label, fast) in [("fastpath_on", true), ("fastpath_off", false)] {
            group.bench_function(format!("{}/{}", bench.name(), label), |b| {
                b.iter(|| {
                    let rt = HhRuntime::new(HhConfig {
                        n_workers: workers,
                        enable_read_write_fast_path: fast,
                        enable_write_ptr_fast_path: fast,
                        ..Default::default()
                    });
                    black_box(rt.run(|ctx| run_timed(ctx, bench, params)).checksum)
                })
            });
        }
    }

    // A2: promotion path-locking cost — usp-tree (promotions to the root serialize) vs
    // multi-usp-tree (independent promotions proceed in parallel), as in §5.
    for bench in [BenchId::UspTree, BenchId::MultiUspTree] {
        group.bench_function(format!("{}/parmem", bench.name()), |b| {
            b.iter(|| {
                let rt = HhRuntime::with_workers(workers);
                black_box(rt.run(|ctx| run_timed(ctx, bench, params)).checksum)
            })
        });
    }

    // A4: parallel zone collection on / off (GC v2) — mutator-heavy workloads under
    // a tiny GC threshold, so collection pauses dominate; `gc_workers = 1` keeps the
    // v1 single-threaded collection shape (minus the hash probes).
    for bench in [BenchId::LruChurn, BenchId::UnionFind] {
        for (label, gc_workers) in [("gc_team", 0usize), ("gc_serial", 1)] {
            group.bench_function(format!("{}/{}", bench.name(), label), |b| {
                b.iter(|| {
                    let rt = HhRuntime::new(HhConfig {
                        n_workers: workers,
                        gc_workers,
                        gc_threshold_words: 64 * 1024,
                        ..Default::default()
                    });
                    black_box(rt.run(|ctx| run_timed(ctx, bench, params)).checksum)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
