//! Figure 11 — the imperative benchmarks on the sequential baseline, the stop-the-world
//! baseline, and the hierarchical runtime (the Manticore-style baseline is excluded, as
//! in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use hh_bench::{bench_params, bench_workers, run_once};
use hh_workloads::BenchId;
use std::hint::black_box;

fn imperative_benchmarks(c: &mut Criterion) {
    let params = bench_params();
    let workers = bench_workers();
    let mut group = c.benchmark_group("fig11_imperative");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for bench in BenchId::IMPERATIVE {
        for runtime in ["seq", "stw", "parmem"] {
            group.bench_function(format!("{}/{}", bench.name(), runtime), |b| {
                b.iter(|| black_box(run_once(runtime, workers, bench, params)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, imperative_benchmarks);
criterion_main!(benches);
