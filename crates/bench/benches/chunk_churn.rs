//! Chunk churn — steady-state allocation with a bounded footprint (memory v2).
//!
//! This is the microbenchmark behind the memory v2 acceptance criterion. Each
//! configuration reuses **one runtime across every iteration**: an iteration is one
//! `run` performing a fixed amount of allocation churn (transient arrays plus
//! threshold collections, with one pinned survivor). Before chunk recycling, every
//! run's chunks were immortal — the store's footprint grew linearly with the
//! iteration count. With the memory v2 lifecycle, a completed run's chunks are
//! retired, reclaimed into size-classed free lists at the next run's start, and
//! reused, so peak resident words stay flat no matter how many iterations execute.
//!
//! Besides the timing (which shows what recycling costs or saves on the allocation
//! path), the bench prints a footprint summary per configuration at the end:
//! `peak` must sit within a small factor of `live + free` after warmup instead of
//! scaling with the iteration count, and `recycle%` shows how much of the chunk
//! traffic the free lists absorbed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hh_api::{ParCtx, RunStats, Runtime};
use hh_baselines::{SeqRuntime, StwRuntime};
use hh_runtime::{HhConfig, HhRuntime};
use std::time::Duration;

/// One iteration's churn: allocate and drop `rounds` transient arrays while keeping
/// a pinned survivor, polling the collector throughout.
fn churn(ctx: &impl ParCtx, rounds: usize) -> u64 {
    let keep = ctx.alloc_data_array(64);
    for i in 0..64 {
        ctx.write_nonptr(keep, i, i as u64);
    }
    ctx.pin(keep);
    for _ in 0..rounds {
        let garbage = ctx.alloc_data_array(512);
        ctx.write_nonptr(garbage, 0, 1);
        ctx.maybe_collect();
    }
    let out = ctx.read_mut(keep, 63);
    ctx.unpin(keep);
    out
}

const ROUNDS: usize = 2_000;

fn footprint_line(name: &str, stats: &RunStats) -> String {
    format!(
        "{name:>18}: peak {:>8} Kw, live {:>6} Kw, free {:>6} Kw, recycled {:>5} ({:.0}% of chunk traffic)",
        stats.peak_live_words / 1024,
        stats.live_words / 1024,
        stats.free_words / 1024,
        stats.chunks_recycled,
        stats.recycle_rate() * 100.0
    )
}

fn chunk_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_churn");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));

    let mut summaries: Vec<String> = Vec::new();

    {
        let rt = HhRuntime::new(HhConfig {
            n_workers: 1,
            chunk_words: 8 * 1024,
            gc_threshold_words: 256 * 1024,
            ..Default::default()
        });
        group.bench_function("parmem/recycling", |b| {
            b.iter(|| black_box(rt.run(|ctx| churn(ctx, ROUNDS))))
        });
        summaries.push(footprint_line("parmem", &rt.stats()));
    }

    {
        let rt = SeqRuntime::new();
        group.bench_function("seq/recycling", |b| {
            b.iter(|| black_box(rt.run(|ctx| churn(ctx, ROUNDS))))
        });
        summaries.push(footprint_line("seq", &rt.stats()));
    }

    {
        let rt = StwRuntime::with_workers(2);
        group.bench_function("stw/recycling", |b| {
            b.iter(|| black_box(rt.run(|ctx| churn(ctx, ROUNDS))))
        });
        summaries.push(footprint_line("stw", &rt.stats()));
    }

    group.finish();

    eprintln!("\nchunk_churn footprint after all iterations (bounded, not ∝ iterations):");
    for line in summaries {
        eprintln!("{line}");
    }
}

criterion_group!(benches, chunk_churn);
criterion_main!(benches);
