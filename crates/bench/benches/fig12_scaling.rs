//! Figure 12 — speedup of the hierarchical runtime as the worker count grows.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_bench::{bench_params, bench_workers, run_once};
use hh_workloads::BenchId;
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let params = bench_params();
    let max_workers = bench_workers();
    let mut group = c.benchmark_group("fig12_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mut worker_counts = vec![1usize, 2];
    if max_workers > 4 {
        worker_counts.push(4);
    }
    worker_counts.push(max_workers);
    worker_counts.dedup();
    for bench in [BenchId::Filter, BenchId::Msort, BenchId::Raytracer] {
        for &p in &worker_counts {
            group.bench_function(format!("{}/P={}", bench.name(), p), |b| {
                b.iter(|| black_box(run_once("parmem", p, bench, params)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
