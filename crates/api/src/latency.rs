//! Latency accounting shared by the serve loop and the collectors: per-thread
//! sample buffers merged into one percentile summary at the end (no locking on
//! the hot path).
//!
//! Originally private to `hh-server` (enqueue-to-completion run latencies); the
//! bounded-pause collector reuses the same recorder for per-pause GC samples, so
//! it lives here, next to [`RunStats`](crate::RunStats), where every runtime and
//! harness can reach it.

use std::time::Duration;

/// Latency samples recorded by one thread, in nanoseconds per event (a completed
/// run for the serve loop, a single collector pause for the GC pause CDF).
#[derive(Default, Debug)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates a recorder expecting roughly `hint` samples.
    pub fn with_capacity(hint: usize) -> LatencyRecorder {
        LatencyRecorder {
            samples: Vec::with_capacity(hint),
        }
    }

    /// Records one event's latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency.as_nanos() as u64);
    }

    /// Records one event's latency, already expressed in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Discards every recorded sample (used by resettable counter blocks).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Merges `other`'s samples into this recorder.
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples.extend(other.samples);
    }

    /// Summarizes the samples without consuming the recorder (sorts a copy).
    /// Returns the all-zero summary when no sample was recorded.
    pub fn summary(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        // Nearest-rank percentile: the smallest sample ≥ p of the distribution.
        let rank = |p: f64| -> u64 {
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        LatencySummary {
            count: n as u64,
            p50_ns: rank(0.50),
            p99_ns: rank(0.99),
            p999_ns: rank(0.999),
            max_ns: sorted[n - 1],
            mean_ns: sorted.iter().sum::<u64>() / n as u64,
        }
    }

    /// Sorts the samples and summarizes them. Returns the all-zero summary when no
    /// sample was recorded.
    pub fn summarize(self) -> LatencySummary {
        self.summary()
    }
}

/// Percentile summary of latencies, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// 99.9th-percentile latency.
    pub p999_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
    /// Arithmetic mean latency.
    pub mean_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_of(ns: impl IntoIterator<Item = u64>) -> LatencyRecorder {
        let mut r = LatencyRecorder::default();
        for v in ns {
            r.record(Duration::from_nanos(v));
        }
        r
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(
            LatencyRecorder::default().summarize(),
            LatencySummary::default()
        );
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // 1..=1000 ns: p50 = 500, p99 = 990, p999 = 999, max = 1000.
        let s = recorder_of(1..=1000).summarize();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn merge_combines_unsorted_buffers() {
        let mut a = recorder_of([900, 100, 500]);
        let b = recorder_of([300, 700]);
        a.merge(b);
        let s = a.summarize();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.max_ns, 900);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = recorder_of([42]).summarize();
        assert_eq!(s.p50_ns, 42);
        assert_eq!(s.p99_ns, 42);
        assert_eq!(s.p999_ns, 42);
        assert_eq!(s.max_ns, 42);
        assert_eq!(s.mean_ns, 42);
    }

    #[test]
    fn summary_does_not_consume_or_reorder() {
        let mut r = recorder_of([30, 10, 20]);
        let first = r.summary();
        assert_eq!(first.p50_ns, 20);
        r.record(Duration::from_nanos(40));
        let second = r.summary();
        assert_eq!(second.count, 4);
        assert_eq!(second.max_ns, 40);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.summary(), LatencySummary::default());
    }
}
