//! The [`ParCtx`] and [`Runtime`] traits: the paper's high-level operations.

use crate::stats::RunStats;
use hh_objmodel::{ObjKind, ObjPtr};

/// The per-task execution context: the paper's high-level operations (Figure 3) plus
/// root pinning and a GC safe point.
///
/// Every benchmark is written once against this trait; the hierarchical-heap runtime
/// and the three baselines implement it. A `ParCtx` value is specific to one running
/// task: [`ParCtx::join`] hands each child closure a *fresh* context bound to that
/// child's heap, mirroring `forkjoin` creating one heap per child task.
pub trait ParCtx: Sized {
    /// `alloc`: allocates an object with `n_ptr` pointer fields followed by `n_nonptr`
    /// non-pointer fields in the current task's heap, returning its pointer.
    ///
    /// Pointer fields start out as [`ObjPtr::NULL`]; non-pointer fields start out zero.
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr;

    /// `readImmutable`: reads field `field` of an object whose fields never change after
    /// initialization. Never touches the forwarding chain — this is the single-load fast
    /// path pure functional code lives on.
    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64;

    /// `readMutable`: reads a mutable field, going through the master copy if the object
    /// has been promoted.
    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64;

    /// `writeNonptr`: writes non-pointer data (ints, float bits) to a mutable field,
    /// updating the master copy if the object has been promoted.
    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64);

    /// `writePtr`: writes an object pointer into a mutable field. This is the operation
    /// that may trigger promotion to preserve disentanglement.
    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr);

    /// Atomic compare-and-swap on a mutable non-pointer field (used by the BFS
    /// benchmarks to mark vertices visited). Returns `Ok(prev)` on success, `Err(seen)`
    /// on failure, like [`std::sync::atomic::AtomicU64::compare_exchange`].
    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64>;

    /// Number of fields of an object (needed by generic code walking arrays).
    fn obj_len(&self, obj: ObjPtr) -> usize;

    /// `forkjoin`: runs both closures, potentially in parallel, each with a fresh child
    /// context, and waits for both.
    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send;

    /// Registers `obj` as a GC root for this task (shadow-stack substitute for stack maps).
    fn pin(&self, obj: ObjPtr);

    /// Removes one pin of `obj`.
    fn unpin(&self, obj: ObjPtr);

    /// A GC safe point: the runtime may collect the current task's heap here if its
    /// allocation volume warrants it. Only pinned objects (and objects reachable from
    /// them) are guaranteed to survive.
    fn maybe_collect(&self);

    /// Number of worker threads the runtime is configured with.
    fn n_workers(&self) -> usize;

    // ------------------------------------------------------------------
    // Provided conveniences built on the required operations.
    // ------------------------------------------------------------------

    /// Reads a pointer out of an immutable field.
    fn read_imm_ptr(&self, obj: ObjPtr, field: usize) -> ObjPtr {
        ObjPtr::from_bits(self.read_imm(obj, field))
    }

    /// Reads a pointer out of a mutable field (through the master copy).
    fn read_mut_ptr(&self, obj: ObjPtr, field: usize) -> ObjPtr {
        ObjPtr::from_bits(self.read_mut(obj, field))
    }

    /// Allocates a mutable reference cell holding non-pointer data.
    fn alloc_ref_data(&self, init: u64) -> ObjPtr {
        let r = self.alloc(0, 1, ObjKind::Ref);
        self.write_nonptr(r, 0, init);
        r
    }

    /// Allocates a mutable reference cell holding an object pointer.
    fn alloc_ref_ptr(&self, init: ObjPtr) -> ObjPtr {
        let r = self.alloc(1, 0, ObjKind::Ref);
        self.write_ptr(r, 0, init);
        r
    }

    /// Allocates a mutable array of `len` non-pointer elements, initialized to zero.
    fn alloc_data_array(&self, len: usize) -> ObjPtr {
        self.alloc(0, len, ObjKind::ArrayData)
    }

    /// Allocates a mutable array of `len` pointer elements, initialized to NULL.
    fn alloc_ptr_array(&self, len: usize) -> ObjPtr {
        self.alloc(len, 0, ObjKind::ArrayPtr)
    }

    /// Allocates an immutable cons cell `(head_ptr, tail_ptr, value)`.
    fn alloc_cons(&self, head: ObjPtr, tail: ObjPtr, value: u64) -> ObjPtr {
        let c = self.alloc(2, 1, ObjKind::Cons);
        self.write_ptr(c, 0, head);
        self.write_ptr(c, 1, tail);
        self.write_nonptr(c, 2, value);
        c
    }

    /// Pins `obj` for the duration of `f` (RAII-style helper when lexical scoping fits).
    fn with_pinned<R>(&self, obj: ObjPtr, f: impl FnOnce(&Self) -> R) -> R {
        self.pin(obj);
        let r = f(self);
        self.unpin(obj);
        r
    }
}

/// An RAII pin on a GC root.
///
/// Constructed by [`Rooted::new`]; the pin is released on drop. Keeping the handle alive
/// keeps the object (and everything reachable from it) alive across collections.
pub struct Rooted<'c, C: ParCtx> {
    ctx: &'c C,
    obj: ObjPtr,
}

impl<'c, C: ParCtx> Rooted<'c, C> {
    /// Pins `obj` in `ctx` until the returned handle is dropped.
    pub fn new(ctx: &'c C, obj: ObjPtr) -> Self {
        ctx.pin(obj);
        Rooted { ctx, obj }
    }

    /// The pinned object.
    pub fn ptr(&self) -> ObjPtr {
        self.obj
    }
}

impl<C: ParCtx> Drop for Rooted<'_, C> {
    fn drop(&mut self) {
        self.ctx.unpin(self.obj);
    }
}

/// A runtime: a scheduler plus a memory manager, able to run a root task and report
/// statistics. Implemented by `HhRuntime`, `SeqRuntime`, `StwRuntime`, and `DlgRuntime`.
pub trait Runtime: Sync {
    /// The per-task context type handed to tasks.
    type Ctx: ParCtx;

    /// Short, stable name used in harness output tables (e.g. `"parmem"`, `"stw"`).
    fn name(&self) -> &'static str;

    /// Number of worker threads.
    fn n_workers(&self) -> usize;

    /// Runs `f` as the root task and returns its result.
    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send;

    /// Statistics accumulated since construction or the last [`Runtime::reset_stats`].
    fn stats(&self) -> RunStats;

    /// Resets the statistics counters (peak memory tracking included).
    fn reset_stats(&self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    /// A tiny single-threaded mock used to exercise the provided helper methods and the
    /// `Rooted` RAII handle without pulling in a real runtime.
    struct MockCtx {
        objects: RefCell<Vec<(ObjKind, usize, Vec<u64>)>>,
        pins: RefCell<HashMap<u64, usize>>,
    }

    impl MockCtx {
        fn new() -> Self {
            MockCtx {
                objects: RefCell::new(Vec::new()),
                pins: RefCell::new(HashMap::new()),
            }
        }
        fn pin_count(&self, obj: ObjPtr) -> usize {
            *self.pins.borrow().get(&obj.to_bits()).unwrap_or(&0)
        }
    }

    impl ParCtx for MockCtx {
        fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
            let mut objs = self.objects.borrow_mut();
            let idx = objs.len();
            let mut fields = vec![ObjPtr::NULL.to_bits(); n_ptr];
            fields.extend(std::iter::repeat(0u64).take(n_nonptr));
            objs.push((kind, n_ptr, fields));
            ObjPtr::new(hh_objmodel::ChunkId(0), idx as u32)
        }
        fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
            self.objects.borrow()[obj.offset() as usize].2[field]
        }
        fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
            self.read_imm(obj, field)
        }
        fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
            self.objects.borrow_mut()[obj.offset() as usize].2[field] = val;
        }
        fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
            self.objects.borrow_mut()[obj.offset() as usize].2[field] = ptr.to_bits();
        }
        fn cas_nonptr(
            &self,
            obj: ObjPtr,
            field: usize,
            expected: u64,
            new: u64,
        ) -> Result<u64, u64> {
            let cur = self.read_mut(obj, field);
            if cur == expected {
                self.write_nonptr(obj, field, new);
                Ok(cur)
            } else {
                Err(cur)
            }
        }
        fn obj_len(&self, obj: ObjPtr) -> usize {
            self.objects.borrow()[obj.offset() as usize].2.len()
        }
        fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
        where
            FA: FnOnce(&Self) -> RA + Send,
            FB: FnOnce(&Self) -> RB + Send,
        {
            (fa(self), fb(self))
        }
        fn pin(&self, obj: ObjPtr) {
            *self.pins.borrow_mut().entry(obj.to_bits()).or_insert(0) += 1;
        }
        fn unpin(&self, obj: ObjPtr) {
            let mut pins = self.pins.borrow_mut();
            let c = pins.get_mut(&obj.to_bits()).expect("unpin without pin");
            *c -= 1;
        }
        fn maybe_collect(&self) {}
        fn n_workers(&self) -> usize {
            1
        }
    }

    #[test]
    fn ref_helpers_roundtrip() {
        let ctx = MockCtx::new();
        let r = ctx.alloc_ref_data(17);
        assert_eq!(ctx.read_mut(r, 0), 17);
        let target = ctx.alloc_ref_data(5);
        let rp = ctx.alloc_ref_ptr(target);
        assert_eq!(ctx.read_mut_ptr(rp, 0), target);
    }

    #[test]
    fn array_helpers_have_requested_lengths() {
        let ctx = MockCtx::new();
        let d = ctx.alloc_data_array(10);
        let p = ctx.alloc_ptr_array(3);
        assert_eq!(ctx.obj_len(d), 10);
        assert_eq!(ctx.obj_len(p), 3);
        assert!(ctx.read_mut_ptr(p, 0).is_null());
        assert_eq!(ctx.read_mut(d, 9), 0);
    }

    #[test]
    fn cons_helper_lays_out_fields() {
        let ctx = MockCtx::new();
        let head = ctx.alloc_ref_data(1);
        let cell = ctx.alloc_cons(head, ObjPtr::NULL, 99);
        assert_eq!(ctx.read_imm_ptr(cell, 0), head);
        assert!(ctx.read_imm_ptr(cell, 1).is_null());
        assert_eq!(ctx.read_imm(cell, 2), 99);
    }

    #[test]
    fn rooted_pins_and_unpins() {
        let ctx = MockCtx::new();
        let obj = ctx.alloc_ref_data(0);
        {
            let _root = Rooted::new(&ctx, obj);
            assert_eq!(ctx.pin_count(obj), 1);
            {
                let _root2 = Rooted::new(&ctx, obj);
                assert_eq!(ctx.pin_count(obj), 2);
            }
            assert_eq!(ctx.pin_count(obj), 1);
        }
        assert_eq!(ctx.pin_count(obj), 0);
    }

    #[test]
    fn with_pinned_balances() {
        let ctx = MockCtx::new();
        let obj = ctx.alloc_ref_data(3);
        let val = ctx.with_pinned(obj, |c| c.read_mut(obj, 0));
        assert_eq!(val, 3);
        assert_eq!(ctx.pin_count(obj), 0);
    }
}
