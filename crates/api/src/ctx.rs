//! The [`ParCtx`] and [`Runtime`] traits: the paper's high-level operations.

use crate::abort::RunError;
use crate::stats::RunStats;
use hh_objmodel::{ObjKind, ObjPtr};

/// The per-task execution context: the paper's high-level operations (Figure 3) plus
/// root pinning and a GC safe point.
///
/// Every benchmark is written once against this trait; the hierarchical-heap runtime
/// and the three baselines implement it. A `ParCtx` value is specific to one running
/// task: [`ParCtx::join`] hands each child closure a *fresh* context bound to that
/// child's heap, mirroring `forkjoin` creating one heap per child task.
pub trait ParCtx: Sized {
    /// `alloc`: allocates an object with `n_ptr` pointer fields followed by `n_nonptr`
    /// non-pointer fields in the current task's heap, returning its pointer.
    ///
    /// Pointer fields start out as [`ObjPtr::NULL`]; non-pointer fields start out zero.
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr;

    /// `readImmutable`: reads field `field` of an object whose fields never change after
    /// initialization. Never touches the forwarding chain — this is the single-load fast
    /// path pure functional code lives on.
    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64;

    /// `readMutable`: reads a mutable field, going through the master copy if the object
    /// has been promoted.
    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64;

    /// `writeNonptr`: writes non-pointer data (ints, float bits) to a mutable field,
    /// updating the master copy if the object has been promoted.
    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64);

    /// `writePtr`: writes an object pointer into a mutable field. This is the operation
    /// that may trigger promotion to preserve disentanglement.
    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr);

    /// Atomic compare-and-swap on a mutable non-pointer field (used by the BFS
    /// benchmarks to mark vertices visited). Returns `Ok(prev)` on success, `Err(seen)`
    /// on failure, like [`std::sync::atomic::AtomicU64::compare_exchange`].
    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64>;

    /// Number of fields of an object (needed by generic code walking arrays).
    fn obj_len(&self, obj: ObjPtr) -> usize;

    /// `forkjoin`: runs both closures, potentially in parallel, each with a fresh child
    /// context, and waits for both.
    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send;

    // ------------------------------------------------------------------
    // Bulk field operations (ParCtx v2).
    //
    // The scalar operations above pay one virtual call plus one forwarding-chain check
    // per 64-bit word. The bulk operations below express a whole contiguous field range
    // in one call so a runtime can amortize that bookkeeping per slice: the
    // hierarchical runtime resolves `findMaster` once and holds the heap read lock
    // across the slice, and the baselines resolve their forwarding barrier once.
    //
    // The default implementations are plain scalar loops, so every `ParCtx` impl is
    // automatically correct; runtimes override them for speed. Bulk operations are
    // observationally equivalent to the corresponding scalar loops (the
    // `cross_runtime` property tests pin this down on all four runtimes).
    // ------------------------------------------------------------------

    /// Bulk `readImmutable`: reads fields `start .. start + out.len()` of an immutable
    /// object into `out`.
    fn read_imm_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.read_imm(obj, start + k);
        }
    }

    /// Bulk `readMutable`: reads fields `start .. start + out.len()` through the master
    /// copy into `out`.
    fn read_mut_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.read_mut(obj, start + k);
        }
    }

    /// Bulk `writeNonptr`: writes `vals` into fields `start .. start + vals.len()`,
    /// updating the master copy if the object has been promoted.
    fn write_nonptr_bulk(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        for (k, &v) in vals.iter().enumerate() {
            self.write_nonptr(obj, start + k, v);
        }
    }

    /// Fills fields `start .. start + len` with `val` (a bulk non-pointer write of one
    /// repeated value, without materializing a buffer).
    fn fill_nonptr(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        for k in 0..len {
            self.write_nonptr(obj, start + k, val);
        }
    }

    /// Copies `len` non-pointer fields from `src[src_start..]` to `dst[dst_start..]`
    /// (an object→object range copy). Reads go through the source's master copy and
    /// writes through the destination's, exactly as the scalar loop would.
    ///
    /// `src` and `dst` may be the same object only if the ranges do not overlap.
    fn copy_nonptr(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        for k in 0..len {
            let v = self.read_mut(src, src_start + k);
            self.write_nonptr(dst, dst_start + k, v);
        }
    }

    // ------------------------------------------------------------------
    // N-ary fork-join (ParCtx v2).
    // ------------------------------------------------------------------

    /// N-ary `forkjoin`: runs every closure in `fns`, potentially in parallel, and
    /// returns their results in order.
    ///
    /// The default implementation divides and conquers over binary [`ParCtx::join`],
    /// so the task tree (and therefore the heap hierarchy) stays balanced: `n` closures
    /// produce a tree of depth `⌈log₂ n⌉`. Closures run in child contexts created by
    /// the underlying joins — except that a single remaining closure runs directly on
    /// the context that holds it (just as the two arms of a plain `join` may), so
    /// callers must not rely on every task getting its own fresh heap.
    fn join_many<R, F>(&self, fns: Vec<F>) -> Vec<R>
    where
        F: FnOnce(&Self) -> R + Send,
        R: Send,
    {
        match fns.len() {
            0 => Vec::new(),
            1 => {
                let f = fns.into_iter().next().expect("len checked");
                vec![f(self)]
            }
            n => {
                let mut left = fns;
                let right = left.split_off(n / 2);
                let (mut ra, mut rb) =
                    self.join(move |c| c.join_many(left), move |c| c.join_many(right));
                ra.append(&mut rb);
                ra
            }
        }
    }

    /// Grain-controlled parallel for: splits `range` divide-and-conquer style until
    /// subranges are at most `grain` long, then invokes `body` on each leaf subrange
    /// and polls [`ParCtx::maybe_collect`] after it.
    ///
    /// Leaf subranges are disjoint, cover `range` exactly, and arrive in no particular
    /// order; the body must only perform writes that commute across leaves (the same
    /// contract the workloads' hand-rolled splitters had). The body receives the leaf
    /// *range* rather than a single index so it can use the bulk operations above.
    /// Leaves run in the child contexts created by the recursive joins — except a
    /// range that already fits in one grain, which runs directly on the calling
    /// context — so bodies must not rely on a fresh heap per leaf.
    fn par_for<F>(&self, range: std::ops::Range<usize>, grain: usize, body: F)
    where
        F: Fn(&Self, std::ops::Range<usize>) + Sync + Send + Copy,
    {
        let (lo, hi) = (range.start, range.end);
        if hi <= lo {
            return;
        }
        if hi - lo <= grain.max(1) {
            body(self, lo..hi);
            self.maybe_collect();
        } else {
            let mid = lo + (hi - lo) / 2;
            self.join(
                move |c| c.par_for(lo..mid, grain, body),
                move |c| c.par_for(mid..hi, grain, body),
            );
        }
    }

    /// Grain-controlled parallel map: one task per grain-aligned block of `range`,
    /// each invoking `body` on its block and polling [`ParCtx::maybe_collect`], with
    /// the per-block results returned in range order.
    ///
    /// This is [`ParCtx::par_for`] for loops that produce a value per leaf (partial
    /// reductions, per-block counts, per-block output lists) — it owns the
    /// block-boundary arithmetic so callers don't hand-roll `b * grain ..
    /// min((b + 1) * grain, n)` at every site. Blocks are aligned to multiples of
    /// `grain` from `range.start`; the execution contract (disjoint coverage,
    /// commuting writes, no fresh-heap guarantee for single-block ranges) matches
    /// `par_for`.
    fn par_map<R, F>(&self, range: std::ops::Range<usize>, grain: usize, body: F) -> Vec<R>
    where
        F: Fn(&Self, std::ops::Range<usize>) -> R + Sync + Send + Copy,
        R: Send,
    {
        let (lo, hi) = (range.start, range.end);
        if hi <= lo {
            return Vec::new();
        }
        let grain = grain.max(1);
        let n_blocks = (hi - lo).div_ceil(grain);
        self.join_many(
            (0..n_blocks)
                .map(|b| {
                    move |c: &Self| {
                        let blo = lo + b * grain;
                        let bhi = (blo + grain).min(hi);
                        let r = body(c, blo..bhi);
                        c.maybe_collect();
                        r
                    }
                })
                .collect(),
        )
    }

    /// Registers `obj` as a GC root for this task (shadow-stack substitute for stack maps).
    fn pin(&self, obj: ObjPtr);

    /// Removes one pin of `obj`.
    fn unpin(&self, obj: ObjPtr);

    /// A GC safe point: the runtime may collect the current task's heap here if its
    /// allocation volume warrants it. Only pinned objects (and objects reachable from
    /// them) are guaranteed to survive.
    fn maybe_collect(&self);

    /// Number of worker threads the runtime is configured with.
    fn n_workers(&self) -> usize;

    // ------------------------------------------------------------------
    // Provided conveniences built on the required operations.
    // ------------------------------------------------------------------

    /// Reads a pointer out of an immutable field.
    fn read_imm_ptr(&self, obj: ObjPtr, field: usize) -> ObjPtr {
        ObjPtr::from_bits(self.read_imm(obj, field))
    }

    /// Reads a pointer out of a mutable field (through the master copy).
    fn read_mut_ptr(&self, obj: ObjPtr, field: usize) -> ObjPtr {
        ObjPtr::from_bits(self.read_mut(obj, field))
    }

    /// Allocates a mutable reference cell holding non-pointer data.
    fn alloc_ref_data(&self, init: u64) -> ObjPtr {
        let r = self.alloc(0, 1, ObjKind::Ref);
        self.write_nonptr(r, 0, init);
        r
    }

    /// Allocates a mutable reference cell holding an object pointer.
    fn alloc_ref_ptr(&self, init: ObjPtr) -> ObjPtr {
        let r = self.alloc(1, 0, ObjKind::Ref);
        self.write_ptr(r, 0, init);
        r
    }

    /// Allocates a mutable array of `len` non-pointer elements, initialized to zero.
    fn alloc_data_array(&self, len: usize) -> ObjPtr {
        self.alloc(0, len, ObjKind::ArrayData)
    }

    /// Allocates a mutable array of `len` pointer elements, initialized to NULL.
    fn alloc_ptr_array(&self, len: usize) -> ObjPtr {
        self.alloc(len, 0, ObjKind::ArrayPtr)
    }

    /// Allocates an immutable cons cell `(head_ptr, tail_ptr, value)`.
    fn alloc_cons(&self, head: ObjPtr, tail: ObjPtr, value: u64) -> ObjPtr {
        let c = self.alloc(2, 1, ObjKind::Cons);
        self.write_ptr(c, 0, head);
        self.write_ptr(c, 1, tail);
        self.write_nonptr(c, 2, value);
        c
    }

    /// Pins `obj` for the duration of `f` (RAII-style helper when lexical scoping fits).
    fn with_pinned<R>(&self, obj: ObjPtr, f: impl FnOnce(&Self) -> R) -> R {
        self.pin(obj);
        let r = f(self);
        self.unpin(obj);
        r
    }
}

/// An RAII pin on a GC root.
///
/// Constructed by [`Rooted::new`]; the pin is released on drop. Keeping the handle alive
/// keeps the object (and everything reachable from it) alive across collections.
pub struct Rooted<'c, C: ParCtx> {
    ctx: &'c C,
    obj: ObjPtr,
}

impl<'c, C: ParCtx> Rooted<'c, C> {
    /// Pins `obj` in `ctx` until the returned handle is dropped.
    pub fn new(ctx: &'c C, obj: ObjPtr) -> Self {
        ctx.pin(obj);
        Rooted { ctx, obj }
    }

    /// The pinned object.
    pub fn ptr(&self) -> ObjPtr {
        self.obj
    }
}

impl<C: ParCtx> Drop for Rooted<'_, C> {
    fn drop(&mut self) {
        self.ctx.unpin(self.obj);
    }
}

/// A runtime: a scheduler plus a memory manager, able to run a root task and report
/// statistics. Implemented by `HhRuntime`, `SeqRuntime`, `StwRuntime`, and `DlgRuntime`.
pub trait Runtime: Sync {
    /// The per-task context type handed to tasks.
    type Ctx: ParCtx;

    /// Short, stable name used in harness output tables (e.g. `"parmem"`, `"stw"`).
    fn name(&self) -> &'static str;

    /// Number of worker threads.
    fn n_workers(&self) -> usize;

    /// Runs `f` as the root task and returns its result.
    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send;

    /// Runs `f` as the root task under a cancellation token, converting any
    /// unwind escaping the run into a typed [`RunError`] instead of propagating
    /// it into the caller (the crash-safe entry point servers use; DESIGN.md
    /// §13).
    ///
    /// The provided implementation checks `ctl` once up front, then catches
    /// whatever [`Runtime::run`] unwinds with and classifies it via
    /// [`RunError::from_panic`]. Runtimes with cooperative safe points
    /// (`HhRuntime`) override this to thread `ctl` into every task context, so
    /// cancellation and deadlines fire *mid-run* at `maybe_collect` and fork
    /// points; on the default implementation they are only observed at the run
    /// boundary.
    ///
    /// Runtime-side teardown (heap disposal, run-epoch retirement, open-window
    /// finalization) is the runtime's own responsibility on the unwind path —
    /// this method only guarantees the failure reaches the caller as a value.
    fn try_run<R, F>(&self, ctl: &std::sync::Arc<crate::abort::RunCtl>, f: F) -> Result<R, RunError>
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        if let Some(reason) = ctl.aborted() {
            return Err(RunError::from_abort(reason));
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run(f))) {
            Ok(r) => Ok(r),
            Err(payload) => Err(RunError::from_panic(payload)),
        }
    }

    /// Statistics accumulated since construction or the last [`Runtime::reset_stats`].
    fn stats(&self) -> RunStats;

    /// Resets the statistics counters (peak memory tracking included).
    fn reset_stats(&self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    /// A tiny single-threaded mock used to exercise the provided helper methods and the
    /// `Rooted` RAII handle without pulling in a real runtime.
    struct MockCtx {
        objects: RefCell<Vec<(ObjKind, usize, Vec<u64>)>>,
        pins: RefCell<HashMap<u64, usize>>,
    }

    impl MockCtx {
        fn new() -> Self {
            MockCtx {
                objects: RefCell::new(Vec::new()),
                pins: RefCell::new(HashMap::new()),
            }
        }
        fn pin_count(&self, obj: ObjPtr) -> usize {
            *self.pins.borrow().get(&obj.to_bits()).unwrap_or(&0)
        }
    }

    impl ParCtx for MockCtx {
        fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
            let mut objs = self.objects.borrow_mut();
            let idx = objs.len();
            let mut fields = vec![ObjPtr::NULL.to_bits(); n_ptr];
            fields.extend(std::iter::repeat_n(0u64, n_nonptr));
            objs.push((kind, n_ptr, fields));
            ObjPtr::new(hh_objmodel::ChunkId(0), idx as u32)
        }
        fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
            self.objects.borrow()[obj.offset() as usize].2[field]
        }
        fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
            self.read_imm(obj, field)
        }
        fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
            self.objects.borrow_mut()[obj.offset() as usize].2[field] = val;
        }
        fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
            self.objects.borrow_mut()[obj.offset() as usize].2[field] = ptr.to_bits();
        }
        fn cas_nonptr(
            &self,
            obj: ObjPtr,
            field: usize,
            expected: u64,
            new: u64,
        ) -> Result<u64, u64> {
            let cur = self.read_mut(obj, field);
            if cur == expected {
                self.write_nonptr(obj, field, new);
                Ok(cur)
            } else {
                Err(cur)
            }
        }
        fn obj_len(&self, obj: ObjPtr) -> usize {
            self.objects.borrow()[obj.offset() as usize].2.len()
        }
        fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
        where
            FA: FnOnce(&Self) -> RA + Send,
            FB: FnOnce(&Self) -> RB + Send,
        {
            (fa(self), fb(self))
        }
        fn pin(&self, obj: ObjPtr) {
            *self.pins.borrow_mut().entry(obj.to_bits()).or_insert(0) += 1;
        }
        fn unpin(&self, obj: ObjPtr) {
            let mut pins = self.pins.borrow_mut();
            let c = pins.get_mut(&obj.to_bits()).expect("unpin without pin");
            *c -= 1;
        }
        fn maybe_collect(&self) {}
        fn n_workers(&self) -> usize {
            1
        }
    }

    #[test]
    fn ref_helpers_roundtrip() {
        let ctx = MockCtx::new();
        let r = ctx.alloc_ref_data(17);
        assert_eq!(ctx.read_mut(r, 0), 17);
        let target = ctx.alloc_ref_data(5);
        let rp = ctx.alloc_ref_ptr(target);
        assert_eq!(ctx.read_mut_ptr(rp, 0), target);
    }

    #[test]
    fn array_helpers_have_requested_lengths() {
        let ctx = MockCtx::new();
        let d = ctx.alloc_data_array(10);
        let p = ctx.alloc_ptr_array(3);
        assert_eq!(ctx.obj_len(d), 10);
        assert_eq!(ctx.obj_len(p), 3);
        assert!(ctx.read_mut_ptr(p, 0).is_null());
        assert_eq!(ctx.read_mut(d, 9), 0);
    }

    #[test]
    fn cons_helper_lays_out_fields() {
        let ctx = MockCtx::new();
        let head = ctx.alloc_ref_data(1);
        let cell = ctx.alloc_cons(head, ObjPtr::NULL, 99);
        assert_eq!(ctx.read_imm_ptr(cell, 0), head);
        assert!(ctx.read_imm_ptr(cell, 1).is_null());
        assert_eq!(ctx.read_imm(cell, 2), 99);
    }

    #[test]
    fn rooted_pins_and_unpins() {
        let ctx = MockCtx::new();
        let obj = ctx.alloc_ref_data(0);
        {
            let _root = Rooted::new(&ctx, obj);
            assert_eq!(ctx.pin_count(obj), 1);
            {
                let _root2 = Rooted::new(&ctx, obj);
                assert_eq!(ctx.pin_count(obj), 2);
            }
            assert_eq!(ctx.pin_count(obj), 1);
        }
        assert_eq!(ctx.pin_count(obj), 0);
    }

    #[test]
    fn with_pinned_balances() {
        let ctx = MockCtx::new();
        let obj = ctx.alloc_ref_data(3);
        let val = ctx.with_pinned(obj, |c| c.read_mut(obj, 0));
        assert_eq!(val, 3);
        assert_eq!(ctx.pin_count(obj), 0);
    }

    #[test]
    fn bulk_defaults_match_scalar_loops() {
        let ctx = MockCtx::new();
        let a = ctx.alloc_data_array(16);
        let b = ctx.alloc_data_array(16);
        let vals: Vec<u64> = (0..8u64).map(|i| i * 11 + 1).collect();
        ctx.write_nonptr_bulk(a, 4, &vals);
        for (k, &v) in vals.iter().enumerate() {
            assert_eq!(ctx.read_mut(a, 4 + k), v);
        }
        let mut out = vec![0u64; 8];
        ctx.read_mut_bulk(a, 4, &mut out);
        assert_eq!(out, vals);
        ctx.read_imm_bulk(a, 4, &mut out);
        assert_eq!(out, vals);
        ctx.fill_nonptr(a, 0, 4, 9);
        assert_eq!(
            (0..4).map(|i| ctx.read_mut(a, i)).collect::<Vec<_>>(),
            vec![9; 4]
        );
        ctx.copy_nonptr(a, 4, b, 2, 8);
        let mut copied = vec![0u64; 8];
        ctx.read_mut_bulk(b, 2, &mut copied);
        assert_eq!(copied, vals);
        // Untouched destination fields stay zero.
        assert_eq!(ctx.read_mut(b, 0), 0);
        assert_eq!(ctx.read_mut(b, 10), 0);
    }

    #[test]
    fn empty_bulk_ops_are_noops() {
        let ctx = MockCtx::new();
        let a = ctx.alloc_data_array(4);
        ctx.write_nonptr_bulk(a, 0, &[]);
        ctx.read_mut_bulk(a, 0, &mut []);
        ctx.fill_nonptr(a, 0, 0, 7);
        ctx.copy_nonptr(a, 0, a, 2, 0);
        assert_eq!(
            (0..4).map(|i| ctx.read_mut(a, i)).collect::<Vec<_>>(),
            vec![0; 4]
        );
    }

    #[test]
    fn join_many_returns_results_in_order() {
        let ctx = MockCtx::new();
        let tasks: Vec<_> = (0..9u64).map(|i| move |_c: &MockCtx| i * i).collect();
        let results = ctx.join_many(tasks);
        assert_eq!(results, (0..9u64).map(|i| i * i).collect::<Vec<_>>());
        let none: Vec<fn(&MockCtx) -> u64> = Vec::new();
        assert!(ctx.join_many(none).is_empty());
        let one: Vec<_> = vec![|_c: &MockCtx| 42u64];
        assert_eq!(ctx.join_many(one), vec![42]);
    }

    #[test]
    fn par_map_returns_block_results_in_order() {
        let ctx = MockCtx::new();
        // Blocks of 10 over 0..25: [0..10), [10..20), [20..25).
        let sums = ctx.par_map(0..25, 10, |_c, r| {
            (r.start, r.end, r.map(|i| i as u64).sum::<u64>())
        });
        assert_eq!(sums, vec![(0, 10, 45), (10, 20, 145), (20, 25, 110)]);
        assert!(ctx.par_map(7..7, 4, |_c, _r| 0u64).is_empty());
        // grain 0 is clamped to 1: one block per index.
        assert_eq!(ctx.par_map(3..6, 0, |_c, r| r.start), vec![3, 4, 5]);
    }

    #[test]
    fn par_for_covers_range_exactly_once() {
        let ctx = MockCtx::new();
        let hits = ctx.alloc_data_array(100);
        ctx.par_for(0..100, 7, move |c, r| {
            for i in r {
                let prev = c.read_mut(hits, i);
                c.write_nonptr(hits, i, prev + 1);
            }
        });
        for i in 0..100 {
            assert_eq!(
                ctx.read_mut(hits, i),
                1,
                "index {i} visited wrong number of times"
            );
        }
        // Empty and tiny ranges terminate without touching anything.
        ctx.par_for(5..5, 4, move |_c, _r| {
            unreachable!("empty range must not call body")
        });
        ctx.par_for(3..4, 0, move |c, r| {
            assert_eq!(r, 3..4);
            c.write_nonptr(hits, 3, 99);
        });
        assert_eq!(ctx.read_mut(hits, 3), 99);
    }
}
