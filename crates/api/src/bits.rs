//! Bit-level conversions between the 64-bit field representation and Rust scalars.
//!
//! Managed objects store every field as a `u64` word, exactly as the paper's runtime
//! stores machine words. Floating-point workloads (raytracer, matrix multiplication)
//! store IEEE-754 bit patterns.

/// Stores an `f64` as its IEEE-754 bit pattern.
#[inline]
pub fn f64_to_bits(x: f64) -> u64 {
    x.to_bits()
}

/// Reads an `f64` back from its IEEE-754 bit pattern.
#[inline]
pub fn f64_from_bits(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Stores an `i64` as a word (two's-complement reinterpretation).
#[inline]
pub fn i64_to_bits(x: i64) -> u64 {
    x as u64
}

/// Reads an `i64` back from a word.
#[inline]
pub fn i64_from_bits(bits: u64) -> i64 {
    bits as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn f64_roundtrip(x in proptest::num::f64::ANY) {
            let back = f64_from_bits(f64_to_bits(x));
            if x.is_nan() {
                prop_assert!(back.is_nan());
            } else {
                prop_assert_eq!(back, x);
            }
        }

        #[test]
        fn i64_roundtrip(x in any::<i64>()) {
            prop_assert_eq!(i64_from_bits(i64_to_bits(x)), x);
        }
    }

    #[test]
    fn ordering_preserved_for_common_values() {
        assert!(f64_from_bits(f64_to_bits(1.5)) < f64_from_bits(f64_to_bits(2.5)));
        assert_eq!(i64_from_bits(i64_to_bits(-7)), -7);
    }
}
