//! Bit-level conversions between the 64-bit field representation and Rust scalars.
//!
//! Managed objects store every field as a `u64` word, exactly as the paper's runtime
//! stores machine words. Floating-point workloads (raytracer, matrix multiplication)
//! store IEEE-754 bit patterns.

/// Stores an `f64` as its IEEE-754 bit pattern.
#[inline]
pub fn f64_to_bits(x: f64) -> u64 {
    x.to_bits()
}

/// Reads an `f64` back from its IEEE-754 bit pattern.
#[inline]
pub fn f64_from_bits(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Stores an `i64` as a word (two's-complement reinterpretation).
#[inline]
pub fn i64_to_bits(x: i64) -> u64 {
    x as u64
}

/// Reads an `i64` back from a word.
#[inline]
pub fn i64_from_bits(bits: u64) -> i64 {
    bits as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn f64_roundtrip() {
        let mut r = Rng::new(41);
        for _ in 0..4096 {
            // Random bit patterns cover normals, subnormals, infinities, and NaNs.
            let x = f64::from_bits(r.next_u64());
            let back = f64_from_bits(f64_to_bits(x));
            if x.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back, x);
            }
        }
        for x in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let back = f64_from_bits(f64_to_bits(x));
            assert!(back.is_nan() == x.is_nan() && (x.is_nan() || back == x));
        }
    }

    #[test]
    fn i64_roundtrip() {
        let mut r = Rng::new(42);
        for _ in 0..4096 {
            let x = r.next_u64() as i64;
            assert_eq!(i64_from_bits(i64_to_bits(x)), x);
        }
        for x in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(i64_from_bits(i64_to_bits(x)), x);
        }
    }

    #[test]
    fn ordering_preserved_for_common_values() {
        assert!(f64_from_bits(f64_to_bits(1.5)) < f64_from_bits(f64_to_bits(2.5)));
        assert_eq!(i64_from_bits(i64_to_bits(-7)), -7);
    }
}
