//! Cooperative run abort: cancellation tokens, deadlines, and the typed panic
//! payloads that carry an abort out of a running task tree.
//!
//! The failure model (DESIGN.md §13) makes tenant failure a first-class event:
//! a run can end by returning, by **cancellation** (the server revokes it), by
//! **deadline** (it ran too long), by an **injected fault** (the chaos layer
//! killed it on purpose), or by an ordinary panic (a workload bug). The first
//! three are *cooperative*: the runtime polls a [`RunCtl`] at its safe points
//! and, when the token has fired, unwinds the task tree with a typed payload
//! ([`RunAbort`]) that [`RunError::from_panic`] classifies back into a value.
//! Unwinding reuses the scheduler's existing panic propagation — the first
//! aborting branch wins, siblings are joined, and the runtime's run-teardown
//! guard still disposes the heap tree and ends the run epoch — so an aborted
//! run leaves the store exactly as conserved as a panicked one.
//!
//! [`Runtime::try_run`](crate::Runtime::try_run) is the entry point servers
//! use: it converts any unwind escaping `run` into a [`RunError`] instead of
//! propagating it into the executor thread.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cooperatively aborted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// [`RunCtl::cancel`] was called (the server revoked the run).
    Cancelled,
    /// The run outlived its [`RunCtl`] deadline.
    DeadlineExceeded,
}

/// The panic payload of a cooperative abort. The runtime's safe points throw it
/// via `std::panic::panic_any` when the run's [`RunCtl`] has fired; it unwinds
/// the task tree like any panic and is classified back into
/// [`RunError::Cancelled`] / [`RunError::DeadlineExceeded`] by
/// [`RunError::from_panic`].
#[derive(Copy, Clone, Debug)]
pub struct RunAbort {
    /// Why the run was aborted.
    pub reason: AbortReason,
}

/// The panic payload of an injected fault (the seeded chaos layer). Runtime
/// fault injectors throw this at hook sites; [`RunError::from_panic`] maps it
/// to [`RunError::InjectedFault`] so servers can retry exactly the runs the
/// fault plan killed.
#[derive(Copy, Clone, Debug)]
pub struct InjectedFault {
    /// The fault site that fired (e.g. `"alloc"`, `"finalize-claimed"`).
    pub site: &'static str,
}

/// Cancellation token and optional deadline for one run, polled cooperatively
/// at the runtime's safe points (`maybe_collect`, fork points).
///
/// Shared by `Arc`: the server holds one end (to cancel), the runtime threads
/// the other through every task context of the run. A fired token is permanent
/// — `RunCtl` is per-run, not reusable across runs.
#[derive(Debug, Default)]
pub struct RunCtl {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl RunCtl {
    /// A token with no deadline; aborts only on [`RunCtl::cancel`].
    pub fn new() -> Arc<RunCtl> {
        Arc::new(RunCtl::default())
    }

    /// A token that fires `budget` from now (and on [`RunCtl::cancel`]).
    pub fn with_deadline(budget: Duration) -> Arc<RunCtl> {
        Arc::new(RunCtl {
            cancelled: AtomicBool::new(false),
            deadline: Some(Instant::now() + budget),
        })
    }

    /// Revokes the run: the next safe point any of its tasks reaches aborts.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`RunCtl::cancel`] has been called (deadline expiry also sets
    /// this, so sibling tasks observe one cheap flag instead of re-reading the
    /// clock).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The reason this token has fired, if it has. Cancellation wins over the
    /// deadline when both hold (the explicit revocation is the stronger
    /// signal). Reading the clock is skipped entirely for tokens without a
    /// deadline, so an armed-but-quiet token costs one atomic load per poll.
    pub fn aborted(&self) -> Option<AbortReason> {
        if self.cancelled.load(Ordering::Acquire) {
            return Some(AbortReason::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch, so every other task of the run aborts on the cheap
                // flag without consulting the clock again.
                self.cancelled.store(true, Ordering::Release);
                Some(AbortReason::DeadlineExceeded)
            }
            _ => None,
        }
    }

    /// Safe-point poll: panics with a [`RunAbort`] payload if the token has
    /// fired. The runtime calls this from `maybe_collect` and fork points; the
    /// unwind is classified by [`RunError::from_panic`] at the run boundary.
    #[inline]
    pub fn check(&self) {
        if let Some(reason) = self.aborted() {
            std::panic::panic_any(RunAbort { reason });
        }
    }
}

/// How a [`Runtime::try_run`](crate::Runtime::try_run) call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The run's [`RunCtl`] was cancelled.
    Cancelled,
    /// The run outlived its [`RunCtl`] deadline.
    DeadlineExceeded,
    /// A seeded fault injector killed the run at the named site. Retryable:
    /// the fault was synthetic, not a property of the request.
    InjectedFault(&'static str),
    /// The task tree panicked for any other reason (a workload bug); carries
    /// the panic message when one was available. Not retryable by default.
    Panic(String),
}

impl RunError {
    /// The error a fired-but-not-yet-thrown abort reason maps to (used by
    /// `try_run` implementations for the checked-before-starting case).
    pub fn from_abort(reason: AbortReason) -> RunError {
        match reason {
            AbortReason::Cancelled => RunError::Cancelled,
            AbortReason::DeadlineExceeded => RunError::DeadlineExceeded,
        }
    }

    /// Classifies a panic payload that unwound out of `Runtime::run` into a
    /// typed error: cooperative aborts and injected faults are recognized by
    /// payload type, anything else is reported as [`RunError::Panic`].
    pub fn from_panic(payload: Box<dyn Any + Send>) -> RunError {
        let payload = match payload.downcast::<RunAbort>() {
            Ok(abort) => {
                return match abort.reason {
                    AbortReason::Cancelled => RunError::Cancelled,
                    AbortReason::DeadlineExceeded => RunError::DeadlineExceeded,
                }
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<InjectedFault>() {
            Ok(fault) => return RunError::InjectedFault(fault.site),
            Err(p) => p,
        };
        let payload = match payload.downcast::<String>() {
            Ok(msg) => return RunError::Panic(*msg),
            Err(p) => p,
        };
        match payload.downcast::<&'static str>() {
            Ok(msg) => RunError::Panic((*msg).to_string()),
            Err(_) => RunError::Panic("non-string panic payload".to_string()),
        }
    }

    /// True for failures a server may retry (the synthetic injected faults);
    /// false for cooperative aborts (retrying a cancelled or deadlined run
    /// contradicts the abort) and genuine panics (a workload bug will panic
    /// again).
    pub fn is_retryable(&self) -> bool {
        matches!(self, RunError::InjectedFault(_))
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Cancelled => write!(f, "run cancelled"),
            RunError::DeadlineExceeded => write!(f, "run deadline exceeded"),
            RunError::InjectedFault(site) => write!(f, "injected fault at {site}"),
            RunError::Panic(msg) => write!(f, "run panicked: {msg}"),
        }
    }
}

/// Suppresses the default panic-hook backtrace spam for *expected* unwinds —
/// cooperative aborts ([`RunAbort`]) and injected faults ([`InjectedFault`]) —
/// while delegating every other panic to the previously installed hook.
/// Idempotent (installs once per process); chaos drivers and abort tests call
/// it so a 64-seed fault sweep doesn't print thousands of expected traces.
pub fn silence_expected_aborts() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info.payload().downcast_ref::<RunAbort>().is_some()
                || info.payload().downcast_ref::<InjectedFault>().is_some();
            if !expected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ctl_is_quiet() {
        let ctl = RunCtl::new();
        assert!(!ctl.is_cancelled());
        assert_eq!(ctl.aborted(), None);
        ctl.check(); // must not panic
    }

    #[test]
    fn cancel_fires_and_latches() {
        let ctl = RunCtl::new();
        ctl.cancel();
        assert_eq!(ctl.aborted(), Some(AbortReason::Cancelled));
        assert!(ctl.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires_and_latches_the_flag() {
        let ctl = RunCtl::with_deadline(Duration::ZERO);
        assert_eq!(ctl.aborted(), Some(AbortReason::DeadlineExceeded));
        // The expiry latched the cancelled flag for sibling tasks.
        assert!(ctl.is_cancelled());
    }

    #[test]
    fn far_deadline_stays_quiet() {
        let ctl = RunCtl::with_deadline(Duration::from_secs(3600));
        assert_eq!(ctl.aborted(), None);
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let ctl = RunCtl::with_deadline(Duration::ZERO);
        ctl.cancel();
        assert_eq!(ctl.aborted(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn check_throws_classifiable_payload() {
        let ctl = RunCtl::new();
        ctl.cancel();
        let payload = std::panic::catch_unwind(|| ctl.check()).unwrap_err();
        assert_eq!(RunError::from_panic(payload), RunError::Cancelled);
    }

    #[test]
    fn classification_covers_all_payload_kinds() {
        let as_payload = |f: Box<dyn FnOnce() + Send>| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_err()
        };
        assert_eq!(
            RunError::from_panic(as_payload(Box::new(|| std::panic::panic_any(RunAbort {
                reason: AbortReason::DeadlineExceeded
            })))),
            RunError::DeadlineExceeded
        );
        assert_eq!(
            RunError::from_panic(as_payload(Box::new(|| std::panic::panic_any(
                InjectedFault { site: "alloc" }
            )))),
            RunError::InjectedFault("alloc")
        );
        assert_eq!(
            RunError::from_panic(as_payload(Box::new(|| panic!("boom {}", 7)))),
            RunError::Panic("boom 7".to_string())
        );
        assert!(RunError::InjectedFault("alloc").is_retryable());
        assert!(!RunError::Cancelled.is_retryable());
        assert!(!RunError::Panic("x".into()).is_retryable());
    }
}
