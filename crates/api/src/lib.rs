//! # hh-api — the high-level operation interface
//!
//! The paper reduces full Standard ML plus nested parallelism to six high-level
//! operations (its Figure 3): `forkjoin`, `alloc`, `readImmutable`, `readMutable`,
//! `writeNonptr`, and `writePtr`. Every runtime in this repository — the hierarchical
//! heap runtime (`hh-runtime`) and the three baselines (`hh-baselines`) — implements
//! exactly that interface, expressed here as the [`ParCtx`] trait, and every benchmark
//! in `hh-workloads` is written once, generically, against it.
//!
//! In addition to the paper's operations the trait carries:
//!
//! * `cas_nonptr`, the atomic compare-and-swap the BFS benchmarks use to mark vertices
//!   visited (§4.2 of the paper);
//! * explicit root pinning (`pin` / `unpin` / [`Rooted`]), the stand-in for MLton's
//!   precise stack maps (see DESIGN.md, substitutions); and
//! * `maybe_collect`, the safe point at which a runtime may run a garbage collection.
//!
//! The [`Runtime`] trait is the harness-facing factory: it runs a root task on the
//! runtime's scheduler and reports [`RunStats`] (GC time, promotions, peak memory) used
//! to regenerate the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod ctx;
pub mod rng;
pub mod stats;

pub use bits::{f64_from_bits, f64_to_bits};
pub use ctx::{ParCtx, Rooted, Runtime};
pub use rng::{hash64, Rng};
pub use stats::RunStats;

pub use hh_objmodel::{ObjKind, ObjPtr};
