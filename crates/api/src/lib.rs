//! # hh-api — the high-level operation interface (ParCtx v2)
//!
//! The paper reduces full Standard ML plus nested parallelism to six high-level
//! operations (its Figure 3): `forkjoin`, `alloc`, `readImmutable`, `readMutable`,
//! `writeNonptr`, and `writePtr`. Every runtime in this repository — the hierarchical
//! heap runtime (`hh-runtime`) and the three baselines (`hh-baselines`) — implements
//! exactly that interface, expressed here as the [`ParCtx`] trait, and every benchmark
//! in `hh-workloads` is written once, generically, against it.
//!
//! ## The v2 surface: bulk operations and n-ary fork-join
//!
//! The paper's scalar operations pay one virtual call plus one forwarding-chain check
//! per 64-bit word, and binary `forkjoin` forces every workload to hand-roll its own
//! recursive range splitting. ParCtx v2 adds two families of provided methods that
//! remove both costs without changing the model:
//!
//! * **Bulk field operations** — [`ParCtx::read_imm_bulk`], [`ParCtx::read_mut_bulk`],
//!   [`ParCtx::write_nonptr_bulk`], [`ParCtx::fill_nonptr`], and
//!   [`ParCtx::copy_nonptr`] (object→object range copy) express a whole contiguous
//!   field range in one call. The default implementations are scalar loops (so every
//!   `ParCtx` impl is automatically correct); the runtimes override them to resolve
//!   `findMaster` (or the baselines' forwarding barrier) **once per slice** and hold
//!   the master heap's read lock across it. Bulk traffic is reported through the
//!   `bulk_*` counters of [`RunStats`].
//! * **N-ary fork-join** — [`ParCtx::join_many`] runs any number of tasks with one
//!   call (divide-and-conquer over binary [`ParCtx::join`], so the heap hierarchy
//!   stays balanced), and [`ParCtx::par_for`] is the grain-controlled parallel loop
//!   every workload previously hand-rolled: it hands each leaf task a disjoint
//!   subrange, sized for the bulk operations above, and polls
//!   [`ParCtx::maybe_collect`] at each leaf.
//!
//! In addition to the paper's operations the trait carries:
//!
//! * `cas_nonptr`, the atomic compare-and-swap the BFS benchmarks use to mark vertices
//!   visited (§4.2 of the paper);
//! * explicit root pinning (`pin` / `unpin` / [`Rooted`]), the stand-in for MLton's
//!   precise stack maps (see DESIGN.md, substitutions); and
//! * `maybe_collect`, the safe point at which a runtime may run a garbage collection.
//!
//! The [`Runtime`] trait is the harness-facing factory: it runs a root task on the
//! runtime's scheduler and reports [`RunStats`] (GC time, promotions, bulk-operation
//! volume, peak memory) used to regenerate the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abort;
pub mod bits;
pub mod ctx;
pub mod latency;
pub mod rng;
pub mod stats;

pub use abort::{silence_expected_aborts, AbortReason, InjectedFault, RunAbort, RunCtl, RunError};
pub use bits::{f64_from_bits, f64_to_bits};
pub use ctx::{ParCtx, Rooted, Runtime};
pub use latency::{LatencyRecorder, LatencySummary};
pub use rng::{hash64, Rng};
pub use stats::RunStats;

pub use hh_objmodel::{ObjKind, ObjPtr};

/// Worker count taken from the `HH_WORKERS` environment variable, falling back to
/// `default` when the variable is unset or unparsable (zero is treated as unset).
///
/// The CI test matrix runs the suite with `HH_WORKERS=1` (single-CPU schedules: no
/// steals, everything sequentialized) and `HH_WORKERS=8` (contended schedules:
/// steals, promotions, parallel collections), so concurrency-sensitive tests should
/// size their pools through this helper rather than hard-coding a count.
pub fn env_workers(default: usize) -> usize {
    std::env::var("HH_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}
