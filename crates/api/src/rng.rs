//! Deterministic pseudo-random generation.
//!
//! The paper generates benchmark inputs "randomly with a hash function"; [`hash64`] is
//! that hash (a SplitMix64 finalizer), and [`Rng`] is a small xorshift generator for
//! places that need a stream rather than an indexed hash. Both are deterministic so
//! every runtime sees bit-identical inputs.

/// SplitMix64-style avalanche hash of a 64-bit value.
///
/// Used to generate element `i` of the synthetic input sequences as `hash64(seed ^ i)`.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small, fast, deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed (any value; zero is remapped).
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: if seed == 0 {
                0x853C_49E6_748F_EA9B
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(1), hash64(2));
        // Low-entropy inputs should produce well-spread outputs: check that the low bits
        // of consecutive hashes are not constant.
        let parity: u64 = (0..64).map(|i| hash64(i) & 1).sum();
        assert!(
            parity > 16 && parity < 48,
            "parity {parity} suggests poor mixing"
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng::new(123);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
