//! Run statistics reported by every runtime.

use std::time::Duration;

/// Counters accumulated by a runtime over one benchmark run.
///
/// These are the quantities the paper's evaluation reports: GC time (the `GC_s` /
/// `GC_72` columns of Figures 10–11), promotion volume (the §4.4 Manticore comparison),
/// and peak heap occupancy (the memory consumption of Figure 13).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock time spent inside garbage collections, summed over all workers.
    pub gc_time: Duration,
    /// Number of garbage collections performed.
    pub gc_count: u64,
    /// Number of stop-the-world pauses (baselines only; 0 for the hierarchical runtime).
    pub world_stops: u64,
    /// Total words allocated by mutators.
    pub allocated_words: u64,
    /// Number of batched promotion passes performed (one per pointer write that had
    /// to evacuate a closure; the DLG baseline counts its transitive
    /// promote-to-global passes here).
    pub promotions: u64,
    /// Number of objects copied by promotions.
    pub promoted_objects: u64,
    /// Total words copied by promotions.
    pub promoted_words: u64,
    /// Forwarding-pointer hops walked while resolving master copies (`findMaster` on
    /// the hierarchical runtime, the forwarding barrier on the baselines). With path
    /// compression enabled this stays close to the number of resolutions.
    pub fwd_hops: u64,
    /// Forwarding-chain hops short-cut by path compression: after a resolution walks
    /// a chain of length ≥ 2, every intermediate hop is CAS-redirected to the master
    /// so the amortized resolution cost is O(1).
    pub fwd_compressions: u64,
    /// Number of heaps created (hierarchical runtime) or local heaps (DLG baseline).
    pub heaps_created: u64,
    /// Heap creations skipped by the lazy steal-time heap policy: an unstolen branch
    /// runs in its parent's heap, eliding the child heap and its join splice
    /// (hierarchical runtime only; 0 elsewhere).
    pub heaps_elided: u64,
    /// Successful work steals observed by the scheduler. Resettable on the
    /// hierarchical runtime (fed by the on-steal hook); pool-lifetime on the baselines.
    pub sched_steals: u64,
    /// Times a scheduler worker parked while idle (pool-lifetime counter).
    pub sched_parks: u64,
    /// Wakeups delivered to parked scheduler workers (pool-lifetime counter).
    pub sched_wakes: u64,
    /// Peak number of live words held in chunks at any point of the run.
    pub peak_live_words: u64,
    /// Words copied by garbage collections (survivors).
    pub gc_copied_words: u64,
    /// Number of bulk field operations (`read_imm_bulk`, `read_mut_bulk`,
    /// `write_nonptr_bulk`, `fill_nonptr`, `copy_nonptr`) executed.
    pub bulk_ops: u64,
    /// Total words moved by bulk field operations.
    pub bulk_words: u64,
    /// Forwarding-chain / master-copy resolutions performed *inside* bulk operations.
    /// A runtime that amortizes correctly performs at most one per object operand —
    /// i.e. at most `2 * bulk_ops` in total (copies have two operands), independent of
    /// slice length.
    pub bulk_master_lookups: u64,
    /// Collections whose zone spanned more than one heap — an internal node of the
    /// hierarchy plus its completed descendants (hierarchical runtime only).
    pub subtree_collections: u64,
    /// Collections run in *team mode*: helpers were drafted (jobs injected /
    /// pause-work offered) alongside the triggering thread (GC v2). Helpers are
    /// best-effort, so a busy pool may leave the trigger collecting alone even
    /// in team mode — [`RunStats::gc_steal_blocks`] measures the parallelism
    /// actually realized.
    pub gc_parallel_collections: u64,
    /// Scan blocks stolen between GC team members during parallel collections
    /// (the work-stealing traffic of the evacuation wavefront).
    pub gc_steal_blocks: u64,
    /// Longest single collection pause observed, in nanoseconds (a gauge of the
    /// worst-case latency the collector imposes; merged by max).
    pub gc_max_pause_ns: u64,
    /// Mutator-observed GC pause samples behind the percentile gauges below: one
    /// per STW collection, and one per incremental seed / safepoint drain /
    /// finalize (idle-worker drains pause no mutator and are not sampled).
    pub gc_pause_count: u64,
    /// Median mutator-observed GC pause, in nanoseconds (gauge; merged by max —
    /// snapshots cannot re-derive percentiles without the raw samples).
    pub gc_pause_p50_ns: u64,
    /// 99th-percentile mutator-observed GC pause, in nanoseconds (gauge; merged
    /// by max).
    pub gc_pause_p99_ns: u64,
    /// 99.9th-percentile mutator-observed GC pause, in nanoseconds (gauge;
    /// merged by max).
    pub gc_pause_p999_ns: u64,
    /// Bounded drain increments executed by incremental collections (safepoint
    /// ticks plus idle-worker drains; 0 unless `incremental_gc` is on).
    pub gc_increments: u64,
    /// Collections completed mutator-concurrently, i.e. incremental windows
    /// finalized (a subset of `gc_count`; 0 unless `incremental_gc` is on).
    pub gc_incremental_collections: u64,
    /// Number of chunks ever minted by the chunk store (monotone).
    pub chunks_created: u64,
    /// Times a retired chunk was reused for a new owner instead of minting a fresh
    /// one (monotone).
    pub chunks_recycled: u64,
    /// Default-sized chunk requests served from a per-thread allocation cache.
    pub alloc_cache_hits: u64,
    /// Words currently held by active chunks (gauge, at snapshot time).
    pub live_words: u64,
    /// Words currently parked on the store's free lists and allocation caches
    /// (gauge, at snapshot time).
    pub free_words: u64,
    /// Quarantined chunks moved out of quarantine (freed or released) by the
    /// epoch watermark — i.e. reclaimed because every run whose epoch could hold
    /// a stale pointer into them had ended, without waiting for global quiescence
    /// (monotone; 0 under the A5 global-horizon ablation).
    pub epoch_reclaims: u64,
    /// Highest number of simultaneously active epoch-tracked runs observed
    /// (gauge of run overlap; merged by max).
    pub active_runs_peak: u64,
    /// Words currently held by quarantined chunks — retired but not yet past the
    /// reuse watermark (gauge, at snapshot time; the "watermark lag" a server
    /// pays for quiescence-free reclamation).
    pub quarantine_lag_words: u64,
}

impl RunStats {
    /// Promotion volume in bytes (words are 8 bytes).
    pub fn promoted_bytes(&self) -> u64 {
        self.promoted_words * 8
    }

    /// Peak heap occupancy in bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_words * 8
    }

    /// Fraction of `elapsed` spent in GC (0.0 if `elapsed` is zero).
    pub fn gc_fraction(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.gc_time.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Merges another stats snapshot into this one (summing counters, taking max of peaks).
    pub fn merge(&mut self, other: &RunStats) {
        self.gc_time += other.gc_time;
        self.gc_count += other.gc_count;
        self.world_stops += other.world_stops;
        self.allocated_words += other.allocated_words;
        self.promotions += other.promotions;
        self.promoted_objects += other.promoted_objects;
        self.promoted_words += other.promoted_words;
        self.fwd_hops += other.fwd_hops;
        self.fwd_compressions += other.fwd_compressions;
        self.heaps_created += other.heaps_created;
        self.heaps_elided += other.heaps_elided;
        self.sched_steals += other.sched_steals;
        self.sched_parks += other.sched_parks;
        self.sched_wakes += other.sched_wakes;
        self.peak_live_words = self.peak_live_words.max(other.peak_live_words);
        self.gc_copied_words += other.gc_copied_words;
        self.bulk_ops += other.bulk_ops;
        self.bulk_words += other.bulk_words;
        self.bulk_master_lookups += other.bulk_master_lookups;
        self.subtree_collections += other.subtree_collections;
        self.gc_parallel_collections += other.gc_parallel_collections;
        self.gc_steal_blocks += other.gc_steal_blocks;
        self.gc_max_pause_ns = self.gc_max_pause_ns.max(other.gc_max_pause_ns);
        self.gc_pause_count += other.gc_pause_count;
        // Percentiles of merged sample sets cannot be reconstructed from two
        // summaries; keeping the worse (larger) side is the conservative bound.
        self.gc_pause_p50_ns = self.gc_pause_p50_ns.max(other.gc_pause_p50_ns);
        self.gc_pause_p99_ns = self.gc_pause_p99_ns.max(other.gc_pause_p99_ns);
        self.gc_pause_p999_ns = self.gc_pause_p999_ns.max(other.gc_pause_p999_ns);
        self.gc_increments += other.gc_increments;
        self.gc_incremental_collections += other.gc_incremental_collections;
        self.chunks_created += other.chunks_created;
        self.chunks_recycled += other.chunks_recycled;
        self.alloc_cache_hits += other.alloc_cache_hits;
        self.epoch_reclaims += other.epoch_reclaims;
        // Gauges: merged snapshots keep the larger instantaneous value, like peaks.
        self.live_words = self.live_words.max(other.live_words);
        self.free_words = self.free_words.max(other.free_words);
        self.active_runs_peak = self.active_runs_peak.max(other.active_runs_peak);
        self.quarantine_lag_words = self.quarantine_lag_words.max(other.quarantine_lag_words);
    }

    /// Fraction of chunk requests served by reuse rather than fresh minting
    /// (0.0 when no chunk was ever handed out). `chunks_created + chunks_recycled`
    /// counts every chunk the store ever handed to a heap.
    pub fn recycle_rate(&self) -> f64 {
        let total = self.chunks_created + self.chunks_recycled;
        if total == 0 {
            0.0
        } else {
            self.chunks_recycled as f64 / total as f64
        }
    }

    /// Average words per bulk operation (0.0 if no bulk operation ran) — the
    /// amortization factor the bulk API buys over scalar access.
    pub fn bulk_amortization(&self) -> f64 {
        if self.bulk_ops == 0 {
            0.0
        } else {
            self.bulk_words as f64 / self.bulk_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let s = RunStats {
            promoted_words: 10,
            peak_live_words: 3,
            ..Default::default()
        };
        assert_eq!(s.promoted_bytes(), 80);
        assert_eq!(s.peak_live_bytes(), 24);
    }

    #[test]
    fn gc_fraction_handles_zero_elapsed() {
        let s = RunStats {
            gc_time: Duration::from_millis(10),
            ..Default::default()
        };
        assert_eq!(s.gc_fraction(Duration::ZERO), 0.0);
        let f = s.gc_fraction(Duration::from_millis(100));
        assert!((f - 0.1).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = RunStats {
            gc_count: 1,
            allocated_words: 100,
            peak_live_words: 50,
            bulk_ops: 2,
            bulk_words: 128,
            bulk_master_lookups: 2,
            promotions: 1,
            fwd_hops: 10,
            fwd_compressions: 4,
            ..Default::default()
        };
        let b = RunStats {
            gc_count: 2,
            allocated_words: 200,
            peak_live_words: 30,
            bulk_ops: 1,
            bulk_words: 64,
            bulk_master_lookups: 2,
            promotions: 2,
            fwd_hops: 5,
            fwd_compressions: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gc_count, 3);
        assert_eq!(a.allocated_words, 300);
        assert_eq!(a.peak_live_words, 50);
        assert_eq!(a.bulk_ops, 3);
        assert_eq!(a.bulk_words, 192);
        assert_eq!(a.bulk_master_lookups, 4);
        assert_eq!(a.promotions, 3);
        assert_eq!(a.fwd_hops, 15);
        assert_eq!(a.fwd_compressions, 5);
    }

    #[test]
    fn recycle_rate_counts_reuse_over_all_handouts() {
        assert_eq!(RunStats::default().recycle_rate(), 0.0);
        let s = RunStats {
            chunks_created: 6,
            chunks_recycled: 2,
            ..Default::default()
        };
        assert!((s.recycle_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn merge_handles_memory_lifecycle_fields() {
        let mut a = RunStats {
            subtree_collections: 1,
            chunks_recycled: 3,
            chunks_created: 5,
            alloc_cache_hits: 7,
            live_words: 100,
            free_words: 10,
            ..Default::default()
        };
        let b = RunStats {
            subtree_collections: 2,
            chunks_recycled: 1,
            chunks_created: 2,
            alloc_cache_hits: 1,
            live_words: 50,
            free_words: 60,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.subtree_collections, 3);
        assert_eq!(a.chunks_recycled, 4);
        assert_eq!(a.chunks_created, 7);
        assert_eq!(a.alloc_cache_hits, 8);
        assert_eq!(a.live_words, 100, "gauges merge by max");
        assert_eq!(a.free_words, 60, "gauges merge by max");
    }

    #[test]
    fn merge_handles_epoch_fields() {
        let mut a = RunStats {
            epoch_reclaims: 5,
            active_runs_peak: 3,
            quarantine_lag_words: 100,
            ..Default::default()
        };
        let b = RunStats {
            epoch_reclaims: 2,
            active_runs_peak: 7,
            quarantine_lag_words: 40,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.epoch_reclaims, 7, "counter merges by sum");
        assert_eq!(a.active_runs_peak, 7, "gauges merge by max");
        assert_eq!(a.quarantine_lag_words, 100, "gauges merge by max");
    }

    #[test]
    fn bulk_amortization_is_words_per_op() {
        assert_eq!(RunStats::default().bulk_amortization(), 0.0);
        let s = RunStats {
            bulk_ops: 4,
            bulk_words: 1024,
            ..Default::default()
        };
        assert!((s.bulk_amortization() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn debug_output_contains_counters() {
        let s = RunStats {
            gc_time: Duration::from_millis(5),
            gc_count: 2,
            promoted_words: 7,
            ..Default::default()
        };
        let d = format!("{s:?}");
        assert!(d.contains("promoted_words: 7"));
    }
}
