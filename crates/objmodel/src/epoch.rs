//! Run epochs: the registry behind quiescence-free chunk reclamation.
//!
//! The original reuse horizon was global: retired chunks stayed quarantined until *no
//! run at all* was active (`ChunkStore::reclaim_retired`, called by the runtimes
//! between runs). That horizon never arrives on a server that keeps many independent
//! runs in flight, so recycling would stop exactly when traffic is sustained.
//!
//! [`RunEpochs`] replaces the global horizon with a per-run one. Every run draws a
//! monotone **epoch** at begin and retires it at dispose. A chunk retired on behalf of
//! run *e* is stamped `retired_at = e` in the quarantine; it becomes reusable as soon
//! as the **min-active-epoch watermark** passes it — i.e. once every run with epoch
//! `<= e` has disposed (`ChunkStore::reclaim_watermark`). Runs that begin *after* the
//! retirement can never hold an `ObjPtr` into the chunk (pointers must not cross
//! runs), so they never hold reclamation back.
//!
//! With a single run at a time the watermark degenerates to the old horizon: the only
//! active epoch is the run's own, and its dispose advances the watermark past
//! everything it retired. The global horizon itself is kept as ablation A5
//! (`HhConfig::epoch_reclaim = false`); see DESIGN.md §5.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Monotone run-epoch registry: issues epochs at run begin, retires them at run
/// dispose, and tracks the min-active-epoch watermark in between.
///
/// Epochs start at 1; tag 0 on a chunk means "not owned by any epoch-tracked run"
/// (baselines before registration, store-level tests) and such chunks fall back to a
/// conservative stamp at retirement.
pub struct RunEpochs {
    /// Next epoch to issue. `next - 1` is the latest epoch ever issued.
    next: AtomicU64,
    /// Epochs issued but not yet retired. The `BTreeSet` keeps `first()` (the
    /// watermark) O(log n); begin/end are rare relative to allocation, so one mutex
    /// is fine.
    active: parking_lot::Mutex<BTreeSet<u64>>,
    /// Cached copy of the watermark (`min_active`), refreshed under the `active`
    /// lock, so hot paths can read it with one atomic load.
    watermark: AtomicU64,
    /// Number of currently active runs (gauge, kept outside the lock for stats).
    active_runs: AtomicUsize,
    /// Highest number of simultaneously active runs ever observed.
    active_runs_peak: AtomicUsize,
}

impl RunEpochs {
    /// Creates a registry with no active runs and epoch 1 as the next to issue.
    pub fn new() -> RunEpochs {
        RunEpochs {
            next: AtomicU64::new(1),
            active: parking_lot::Mutex::new(BTreeSet::new()),
            watermark: AtomicU64::new(1),
            active_runs: AtomicUsize::new(0),
            active_runs_peak: AtomicUsize::new(0),
        }
    }

    /// Begins a run: issues a fresh epoch and marks it active. The issue and the
    /// insertion happen under one lock so the watermark never observes a gap.
    pub fn begin(&self) -> u64 {
        let mut active = self.active.lock();
        let epoch = self.next.fetch_add(1, Ordering::Relaxed);
        active.insert(epoch);
        self.refresh_watermark(&active);
        let n = active.len();
        drop(active);
        self.active_runs.store(n, Ordering::Relaxed);
        self.active_runs_peak.fetch_max(n, Ordering::Relaxed);
        epoch
    }

    /// Ends the run that holds `epoch`, advancing the watermark past it if it was
    /// the oldest active run. Idempotent: retiring an unknown epoch is a no-op (the
    /// panic-unwind path may race a normal end).
    pub fn end(&self, epoch: u64) {
        let mut active = self.active.lock();
        active.remove(&epoch);
        self.refresh_watermark(&active);
        let n = active.len();
        drop(active);
        self.active_runs.store(n, Ordering::Relaxed);
    }

    fn refresh_watermark(&self, active: &BTreeSet<u64>) {
        // With no active run, everything ever retired is past the horizon: the
        // watermark is the next epoch to issue (strictly above every stamp).
        let min = active
            .first()
            .copied()
            .unwrap_or_else(|| self.next.load(Ordering::Relaxed));
        self.watermark.store(min, Ordering::Relaxed);
    }

    /// The latest epoch ever issued (0 before the first run). Used as the
    /// conservative retirement stamp for chunks that carry no run tag: such a chunk
    /// is reclaimable only once every run alive at retirement has disposed.
    pub fn stamp(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }

    /// The min-active-epoch watermark: every chunk whose retirement stamp is
    /// **strictly below** this is past its reuse horizon. Equals the next epoch to
    /// issue when no run is active (the degenerate single-run / quiescent case).
    pub fn min_active(&self) -> u64 {
        self.watermark.load(Ordering::Relaxed)
    }

    /// Number of currently active runs.
    pub fn active_runs(&self) -> usize {
        self.active_runs.load(Ordering::Relaxed)
    }

    /// Highest number of simultaneously active runs ever observed.
    pub fn active_runs_peak(&self) -> usize {
        self.active_runs_peak.load(Ordering::Relaxed)
    }
}

impl Default for RunEpochs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_monotone_from_one() {
        let e = RunEpochs::new();
        assert_eq!(e.stamp(), 0, "no epoch issued yet");
        assert_eq!(e.begin(), 1);
        assert_eq!(e.begin(), 2);
        assert_eq!(e.stamp(), 2);
    }

    #[test]
    fn watermark_tracks_oldest_active_run() {
        let e = RunEpochs::new();
        let a = e.begin(); // 1
        let b = e.begin(); // 2
        let c = e.begin(); // 3
        assert_eq!(e.min_active(), a);
        // Ending a *younger* run does not move the watermark.
        e.end(b);
        assert_eq!(e.min_active(), a);
        // Ending the oldest advances it to the next-oldest survivor.
        e.end(a);
        assert_eq!(e.min_active(), c);
        // Quiescence: watermark strictly above every epoch ever issued.
        e.end(c);
        assert_eq!(e.min_active(), 4);
        assert!(e.min_active() > e.stamp());
    }

    #[test]
    fn active_run_gauges() {
        let e = RunEpochs::new();
        assert_eq!(e.active_runs(), 0);
        let a = e.begin();
        let b = e.begin();
        assert_eq!(e.active_runs(), 2);
        assert_eq!(e.active_runs_peak(), 2);
        e.end(a);
        e.end(b);
        assert_eq!(e.active_runs(), 0);
        assert_eq!(e.active_runs_peak(), 2, "peak is sticky");
        // Ending an unknown epoch is harmless.
        e.end(999);
        assert_eq!(e.active_runs(), 0);
    }

    #[test]
    fn concurrent_begin_end_keeps_watermark_sound() {
        let e = std::sync::Arc::new(RunEpochs::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let e = std::sync::Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let epoch = e.begin();
                    // The watermark can never pass an active epoch.
                    assert!(e.min_active() <= epoch);
                    e.end(epoch);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.active_runs(), 0);
        assert_eq!(e.min_active(), e.stamp() + 1);
        assert!(e.active_runs_peak() >= 1);
    }
}
