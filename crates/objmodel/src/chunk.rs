//! Memory chunks.
//!
//! A [`Chunk`] is a contiguous block of 64-bit words into which objects are allocated by
//! bumping a cursor. Heaps (in `hh-heaps`) are linked lists of chunks; joining two heaps
//! moves chunks between lists without copying, exactly as in the paper's implementation
//! section ("a heap is a linked-list of variable-sized memory regions called chunks").
//!
//! Each chunk records the heap that allocated it (`owner`). Resolving the *current* heap
//! of an object — after any number of heap joins — is the job of the heap registry; the
//! chunk only remembers where the object was born.

use crate::objptr::ObjPtr;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Identifier of a chunk inside a [`ChunkStore`](crate::store::ChunkStore).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ChunkId(pub u32);

/// Raw heap id meaning "no heap" (used before a chunk is adopted and in tests).
pub const RAW_HEAP_NONE: u32 = u32::MAX;

/// Decoded per-chunk collection state (see [`Chunk::gc_state`]).
///
/// A collection stamps every chunk it involves with its own *epoch* (drawn from
/// [`crate::ChunkStore::next_gc_epoch`]), so membership tests during the evacuation
/// are one atomic load on the chunk instead of hash-set probes, and nothing ever
/// needs to be cleared: a later collection simply stamps a later epoch, and a stale
/// stamp reads as [`ChunkGcState::Outside`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChunkGcState {
    /// The chunk is not involved in the collection of the given epoch.
    Outside,
    /// From-space of the collection: the chunk belongs to a heap of the zone (the
    /// payload is the zone-local *slot* of that heap, assigned at zone assembly).
    FromSpace(u16),
    /// To-space of the collection: the chunk holds copies made by this collection
    /// (the payload is the heap slot the copies belong to).
    ToSpace(u16),
}

/// Bit layout of the packed collection-state word: `epoch << 18 | slot << 2 | flags`.
const GC_FLAG_FROM: u64 = 0b01;
const GC_FLAG_TO: u64 = 0b10;
const GC_SLOT_SHIFT: u32 = 2;
const GC_EPOCH_SHIFT: u32 = 18;
/// Maximum number of heaps one collection zone can address through chunk tags.
pub const GC_MAX_ZONE_SLOTS: usize = 1 << (GC_EPOCH_SHIFT - GC_SLOT_SHIFT);

/// A diagnostic snapshot of one chunk's lifecycle and collection state, taken by
/// [`Chunk::forensics`]. Invariant checkers attach this to their reports so a
/// violation seen once in a thousand serve runs carries enough context (who owned
/// the chunk, which run it was attributed to, which collection last tagged it and
/// as what) to be diagnosed post-mortem instead of re-run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChunkForensics {
    /// The chunk's id.
    pub chunk: ChunkId,
    /// Raw heap id recorded on the chunk (allocation-time owner, pre-merge).
    pub owner: u32,
    /// Run epoch the chunk is attributed to (0 = untracked).
    pub run_tag: u64,
    /// Reuse generation at snapshot time.
    pub generation: u32,
    /// Whether the chunk was retired at snapshot time.
    pub retired: bool,
    /// Collection epoch of the last gc tag stamped on the chunk (0 = never tagged
    /// or recycled since).
    pub gc_epoch: u64,
    /// Zone-heap slot encoded in the last gc tag.
    pub gc_slot: u16,
    /// FROM bit of the last gc tag.
    pub gc_from: bool,
    /// TO bit of the last gc tag.
    pub gc_to: bool,
}

impl std::fmt::Display for ChunkForensics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match (self.gc_from, self.gc_to) {
            (false, false) => "untagged",
            (true, false) => "FROM",
            (false, true) => "TO",
            (true, true) => "FROM|TO",
        };
        write!(
            f,
            "chunk {} (owner {}, run_tag {}, gen {}, {}, gc epoch {} slot {} {})",
            self.chunk.0,
            self.owner,
            self.run_tag,
            self.generation,
            if self.retired { "retired" } else { "active" },
            self.gc_epoch,
            self.gc_slot,
            phase,
        )
    }
}

/// A fixed-capacity block of atomically accessed words with bump allocation.
pub struct Chunk {
    id: ChunkId,
    /// Raw id of the heap this chunk was allocated into (interpreted by `hh-heaps`).
    owner: AtomicU32,
    /// Next free word index.
    top: AtomicUsize,
    /// True once the chunk's contents have been retired by a collection; retained only
    /// for accounting (stale pointers must no longer be dereferenced).
    retired: std::sync::atomic::AtomicBool,
    /// Reuse generation: 0 for a freshly minted chunk, bumped on every recycle
    /// (reuse). Lets tests and debug checks detect stale [`ObjPtr`]s that
    /// survived past a chunk's reuse horizon (the pointer itself carries no
    /// generation, but the chunk it claims to point into does).
    generation: AtomicU32,
    /// Intrusive link used by the store's lock-free free lists (Treiber stacks).
    /// `u32::MAX` means "not linked". Only the store touches this field, and only
    /// while the chunk is in the free state.
    pub(crate) free_next: AtomicU32,
    /// Packed epoch-tagged collection state (see [`ChunkGcState`]). Written during
    /// zone assembly (from-space) and by to-space allocation; read by every
    /// `forward` step of a collection. Never cleared — a stale epoch decodes as
    /// [`ChunkGcState::Outside`].
    gc_tag: AtomicU64,
    /// Run epoch of the run this chunk is currently allocated on behalf of, or 0
    /// when the chunk is not attributed to an epoch-tracked run. Set at activation,
    /// read at retirement (the quarantine stamp) and by the cross-run debug check.
    run_tag: AtomicU64,
    words: Box<[AtomicU64]>,
}

impl Chunk {
    /// Creates a zero-filled chunk of `n_words` words owned by raw heap `owner`.
    pub fn new(id: ChunkId, owner: u32, n_words: usize) -> Chunk {
        let words: Vec<AtomicU64> = (0..n_words).map(|_| AtomicU64::new(0)).collect();
        Chunk {
            id,
            owner: AtomicU32::new(owner),
            top: AtomicUsize::new(0),
            retired: std::sync::atomic::AtomicBool::new(false),
            generation: AtomicU32::new(0),
            free_next: AtomicU32::new(u32::MAX),
            gc_tag: AtomicU64::new(0),
            run_tag: AtomicU64::new(0),
            words: words.into_boxed_slice(),
        }
    }

    /// This chunk's id.
    #[inline]
    pub fn id(&self) -> ChunkId {
        self.id
    }

    /// Total capacity in words.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Number of words already allocated.
    #[inline]
    pub fn used(&self) -> usize {
        self.top.load(Ordering::Relaxed).min(self.capacity())
    }

    /// Words still available for allocation.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity() - self.used()
    }

    /// Raw id of the heap this chunk was allocated into.
    #[inline]
    pub fn owner(&self) -> u32 {
        self.owner.load(Ordering::Acquire)
    }

    /// Re-points the chunk at a (possibly merged) heap. Used for path compression by the
    /// heap registry and when to-space chunks are adopted by their heap after a flip.
    #[inline]
    pub fn set_owner(&self, raw_heap: u32) {
        self.owner.store(raw_heap, Ordering::Release);
    }

    /// Compare-and-set the owner; used for lock-free path compression.
    #[inline]
    pub fn compare_set_owner(&self, expected: u32, new: u32) -> bool {
        self.owner
            .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks the chunk as retired (its contents were evacuated by a collection).
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Atomically transitions the chunk to retired; returns `true` for exactly one
    /// caller, making retirement accounting race-free.
    pub(crate) fn try_retire(&self) -> bool {
        self.retired
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// True if the chunk has been retired.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// The chunk's reuse generation: 0 until the chunk's first reuse, then one
    /// more per reuse. An `ObjPtr` formed while the chunk was in an earlier generation
    /// is stale and must not be dereferenced.
    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation.load(Ordering::Acquire)
    }

    /// Run epoch this chunk is currently attributed to (0 = untracked). See
    /// [`Chunk::set_run_tag`].
    #[inline]
    pub fn run_tag(&self) -> u64 {
        self.run_tag.load(Ordering::Acquire)
    }

    /// Attributes the chunk to the run that holds `epoch`. The store sets this at
    /// activation (mint / reuse) from the allocating heap's run tag; retirement
    /// reads it back as the quarantine stamp, so a chunk becomes reusable exactly
    /// when its owning run — the only run whose tasks may hold `ObjPtr`s into it —
    /// has disposed.
    #[inline]
    pub fn set_run_tag(&self, epoch: u64) {
        self.run_tag.store(epoch, Ordering::Release);
    }

    /// Stamps this chunk as **from-space** of the collection `epoch`, belonging to
    /// the zone heap at `slot`. Called during zone assembly, before any collector
    /// worker starts evacuating (the `Release` store pairs with the `Acquire` load
    /// in [`Chunk::gc_state`]).
    #[inline]
    pub fn set_gc_from_space(&self, epoch: u64, slot: u16) {
        // The tag holds 64 - GC_EPOCH_SHIFT epoch bits; beyond that the shift
        // truncates and every tag would decode as Outside (2^46 collections away,
        // but enforce the bound rather than rely on it silently).
        debug_assert!(
            epoch < 1 << (64 - GC_EPOCH_SHIFT),
            "GC epoch exceeds the chunk tag's epoch field"
        );
        self.gc_tag.store(
            (epoch << GC_EPOCH_SHIFT) | ((slot as u64) << GC_SLOT_SHIFT) | GC_FLAG_FROM,
            Ordering::Release,
        );
    }

    /// Stamps this chunk as **to-space** of the collection `epoch` for the zone heap
    /// at `slot`. Called by the allocating collector worker before the chunk becomes
    /// reachable through any forwarding pointer.
    #[inline]
    pub fn set_gc_to_space(&self, epoch: u64, slot: u16) {
        debug_assert!(
            epoch < 1 << (64 - GC_EPOCH_SHIFT),
            "GC epoch exceeds the chunk tag's epoch field"
        );
        self.gc_tag.store(
            (epoch << GC_EPOCH_SHIFT) | ((slot as u64) << GC_SLOT_SHIFT) | GC_FLAG_TO,
            Ordering::Release,
        );
    }

    /// Atomically retags this chunk from **from-space** to **to-space** of the same
    /// collection (`epoch`, `slot`) — the in-place promotion of a dedicated
    /// large-object chunk, whose single object is transferred wholesale instead of
    /// being copied. The CAS arbitrates racing evacuators: exactly one caller wins
    /// (and performs the transfer bookkeeping); losers re-read the tag and find the
    /// object already in to-space.
    #[inline]
    pub fn try_gc_promote_in_place(&self, epoch: u64, slot: u16) -> bool {
        debug_assert!(
            epoch < 1 << (64 - GC_EPOCH_SHIFT),
            "GC epoch exceeds the chunk tag's epoch field"
        );
        let base = (epoch << GC_EPOCH_SHIFT) | ((slot as u64) << GC_SLOT_SHIFT);
        self.gc_tag
            .compare_exchange(
                base | GC_FLAG_FROM,
                base | GC_FLAG_TO,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Decodes this chunk's collection state **with respect to** collection `epoch`:
    /// one atomic load replaces the old per-object `HashSet` membership probe and
    /// `heap_of` resolution. A tag stamped by any other (earlier or concurrent)
    /// collection decodes as [`ChunkGcState::Outside`] — distinct collections use
    /// distinct epochs and disjoint zones, so tags never need clearing.
    #[inline]
    pub fn gc_state(&self, epoch: u64) -> ChunkGcState {
        let tag = self.gc_tag.load(Ordering::Acquire);
        if tag >> GC_EPOCH_SHIFT != epoch {
            return ChunkGcState::Outside;
        }
        let slot = ((tag >> GC_SLOT_SHIFT) & (GC_MAX_ZONE_SLOTS as u64 - 1)) as u16;
        if tag & GC_FLAG_TO != 0 {
            ChunkGcState::ToSpace(slot)
        } else {
            ChunkGcState::FromSpace(slot)
        }
    }

    /// Takes a diagnostic snapshot of the chunk's lifecycle and collection state:
    /// the **raw** gc tag decoded without an epoch filter (unlike
    /// [`Chunk::gc_state`], which hides tags of other collections), plus run tag,
    /// owner, generation and retirement. Each field is an independent atomic load —
    /// the snapshot is for post-mortem reports, not synchronization.
    pub fn forensics(&self) -> ChunkForensics {
        let tag = self.gc_tag.load(Ordering::Acquire);
        ChunkForensics {
            chunk: self.id,
            owner: self.owner(),
            run_tag: self.run_tag(),
            generation: self.generation(),
            retired: self.is_retired(),
            gc_epoch: tag >> GC_EPOCH_SHIFT,
            gc_slot: ((tag >> GC_SLOT_SHIFT) & (GC_MAX_ZONE_SLOTS as u64 - 1)) as u16,
            gc_from: tag & GC_FLAG_FROM != 0,
            gc_to: tag & GC_FLAG_TO != 0,
        }
    }

    /// Resets the chunk for reuse by a new owner: the previously used word prefix is
    /// zeroed (so recycled chunks behave like fresh, zero-filled ones and stale
    /// headers read as empty objects), the bump cursor restarts at 0, the retired
    /// flag clears, and the generation advances.
    ///
    /// The caller (the store) must guarantee the reuse horizon: no stale `ObjPtr`
    /// into this chunk may be dereferenced again. In this codebase that horizon is
    /// "no run of the owning runtime is active" — see `ChunkStore::reclaim_retired`
    /// and DESIGN.md §5.
    pub(crate) fn recycle(&self, new_owner: u32) {
        let used = self.used();
        for i in 0..used {
            self.words[i].store(0, Ordering::Relaxed);
        }
        // Hygiene only: a stale tag would decode as Outside anyway (epochs are
        // never reissued), but a recycled chunk starts with a clean slate. The run
        // tag is cleared too — the store re-stamps it for the new owner's run.
        self.gc_tag.store(0, Ordering::Relaxed);
        self.run_tag.store(0, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.owner.store(new_owner, Ordering::Release);
        self.retired.store(false, Ordering::Release);
        // Publish the cleared words and state before the cursor restart makes the
        // chunk allocatable again.
        self.top.store(0, Ordering::Release);
    }

    /// Attempts to reserve `n_words` contiguous words, returning the starting offset.
    ///
    /// Allocation within a chunk is thread-safe (a fetch-add with a capacity check) so
    /// that promotions — which allocate into *ancestor* heaps while holding the heap's
    /// write lock — do not race with the owning task's allocations unsafely. Over-bumps
    /// are benign: the cursor may exceed capacity transiently but no slot beyond the
    /// capacity is ever handed out.
    pub fn try_bump(&self, n_words: usize) -> Option<u32> {
        debug_assert!(n_words > 0);
        let start = self.top.fetch_add(n_words, Ordering::AcqRel);
        if start + n_words <= self.capacity() {
            Some(start as u32)
        } else {
            None
        }
    }

    /// The word at index `i`.
    #[inline]
    pub fn word(&self, i: usize) -> &AtomicU64 {
        &self.words[i]
    }

    /// True if the object pointer refers to a word range inside this chunk.
    pub fn contains(&self, ptr: ObjPtr) -> bool {
        !ptr.is_null() && ptr.chunk() == self.id && (ptr.offset() as usize) < self.used()
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("id", &self.id)
            .field("owner", &self.owner())
            .field("used", &self.used())
            .field("capacity", &self.capacity())
            .field("retired", &self.is_retired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bump_allocates_disjoint_ranges() {
        let c = Chunk::new(ChunkId(0), 5, 100);
        let a = c.try_bump(10).unwrap();
        let b = c.try_bump(20).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(c.used(), 30);
        assert_eq!(c.free(), 70);
    }

    #[test]
    fn bump_fails_when_full() {
        let c = Chunk::new(ChunkId(0), 0, 16);
        assert!(c.try_bump(16).is_some());
        assert!(c.try_bump(1).is_none());
    }

    #[test]
    fn bump_exact_boundary() {
        let c = Chunk::new(ChunkId(0), 0, 8);
        assert_eq!(c.try_bump(8), Some(0));
        assert!(c.try_bump(1).is_none());
    }

    #[test]
    fn words_are_zero_initialized() {
        let c = Chunk::new(ChunkId(1), 0, 64);
        for i in 0..64 {
            assert_eq!(c.word(i).load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn owner_changes_visible() {
        let c = Chunk::new(ChunkId(2), 7, 8);
        assert_eq!(c.owner(), 7);
        c.set_owner(9);
        assert_eq!(c.owner(), 9);
        assert!(c.compare_set_owner(9, 11));
        assert!(!c.compare_set_owner(9, 13));
        assert_eq!(c.owner(), 11);
    }

    #[test]
    fn contains_checks_chunk_and_range() {
        let c = Chunk::new(ChunkId(3), 0, 32);
        c.try_bump(4).unwrap();
        assert!(c.contains(ObjPtr::new(ChunkId(3), 0)));
        assert!(c.contains(ObjPtr::new(ChunkId(3), 3)));
        assert!(!c.contains(ObjPtr::new(ChunkId(3), 4)));
        assert!(!c.contains(ObjPtr::new(ChunkId(4), 0)));
        assert!(!c.contains(ObjPtr::NULL));
    }

    #[test]
    fn retire_flag() {
        let c = Chunk::new(ChunkId(0), 0, 8);
        assert!(!c.is_retired());
        c.retire();
        assert!(c.is_retired());
    }

    #[test]
    fn gc_state_roundtrips_and_respects_epochs() {
        let c = Chunk::new(ChunkId(0), 0, 16);
        assert_eq!(c.gc_state(1), ChunkGcState::Outside, "untagged chunk");
        c.set_gc_from_space(7, 3);
        assert_eq!(c.gc_state(7), ChunkGcState::FromSpace(3));
        assert_eq!(c.gc_state(8), ChunkGcState::Outside, "stale epoch");
        assert_eq!(
            c.gc_state(6),
            ChunkGcState::Outside,
            "future tag, old epoch"
        );
        c.set_gc_to_space(8, 11);
        assert_eq!(c.gc_state(8), ChunkGcState::ToSpace(11));
        assert_eq!(
            c.gc_state(7),
            ChunkGcState::Outside,
            "old epoch overwritten"
        );
        // Recycling clears the tag.
        c.retire();
        c.recycle(2);
        assert_eq!(c.gc_state(8), ChunkGcState::Outside);
    }

    #[test]
    fn recycle_resets_contents_and_bumps_generation() {
        let c = Chunk::new(ChunkId(0), 3, 64);
        let off = c.try_bump(8).unwrap() as usize;
        c.word(off).store(0xDEAD_BEEF, Ordering::Relaxed);
        c.retire();
        assert_eq!(c.generation(), 0);
        c.recycle(9);
        assert_eq!(c.generation(), 1);
        assert_eq!(c.owner(), 9);
        assert!(!c.is_retired());
        assert_eq!(c.used(), 0);
        assert_eq!(
            c.word(off).load(Ordering::Relaxed),
            0,
            "old data must be gone"
        );
        // The chunk allocates from the start again, like a fresh one.
        assert_eq!(c.try_bump(4), Some(0));
    }

    #[test]
    fn concurrent_bump_no_overlap() {
        let c = Arc::new(Chunk::new(ChunkId(0), 0, 100_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut offsets = Vec::new();
                for _ in 0..1000 {
                    if let Some(o) = c.try_bump(7) {
                        offsets.push(o);
                    }
                }
                offsets
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Every reservation is 7 words, so successive offsets differ by at least 7.
        for w in all.windows(2) {
            assert!(
                w[1] >= w[0] + 7,
                "overlapping reservations: {} {}",
                w[0],
                w[1]
            );
        }
    }
}
