//! # hh-objmodel — object model and chunked memory substrate
//!
//! This crate provides the lowest layer of the hierarchical-heap runtime described in
//! *Hierarchical Memory Management for Mutable State* (Guatto et al., PPoPP 2018): the
//! representation of heap objects and of the memory *chunks* they live in.
//!
//! In the paper's MLton-based implementation, a heap is "a linked-list of variable-sized
//! memory regions called chunks", and the heap owning an arbitrary pointer is found "by
//! looking up the chunk metadata using address masking". We reproduce the same structure
//! in safe Rust:
//!
//! * an [`ObjPtr`] packs a *(chunk id, word offset)* pair into 64 bits,
//! * a [`Chunk`] is a fixed block of `AtomicU64` words with bump-pointer allocation,
//!   a generation tag, and a reset-for-reuse operation,
//! * the [`ChunkStore`] is an append-only table mapping chunk ids to chunks (the stand-in
//!   for address-mask metadata lookup) **plus the chunk memory lifecycle**: retired
//!   chunks are quarantined, reclaimed into size-classed lock-free free lists at the
//!   reuse horizon, and served back out through per-thread allocation caches (memory
//!   v2, DESIGN.md §5), and
//! * an [`ObjView`] gives structured access to one object: its [`Header`], its dedicated
//!   forwarding-pointer slot, and its pointer / non-pointer fields.
//!
//! Every object word is an `AtomicU64` because mutable fields may be accessed concurrently
//! with promotions installing forwarding pointers; a plain data race would be undefined
//! behaviour in Rust, so all accesses go through atomics with the orderings documented on
//! each accessor.
//!
//! Nothing in this crate knows about heaps, tasks, or garbage collection; those live in
//! `hh-heaps`, `hh-sched`, and `hh-runtime`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appendvec;
pub mod chunk;
pub mod epoch;
pub mod header;
pub mod objptr;
pub mod store;
pub mod view;

pub use appendvec::AppendVec;
pub use chunk::{Chunk, ChunkForensics, ChunkGcState, ChunkId, GC_MAX_ZONE_SLOTS, RAW_HEAP_NONE};
pub use epoch::RunEpochs;
pub use header::{Header, ObjKind};
pub use objptr::ObjPtr;
pub use store::{ChunkStore, StoreStats};
pub use view::{ObjView, OFF_FIELDS, OFF_FWD, OFF_HEADER};
