//! A concurrent, append-only, index-stable vector.
//!
//! The chunk table and the heap registry both need a container that supports
//! *lock-free reads by index* while new entries are appended concurrently, and whose
//! existing entries never move (readers hold `&T` across appends). [`AppendVec`]
//! provides exactly that using a two-level structure of geometrically growing
//! segments, each allocated once and never reallocated.
//!
//! Indices are assigned by a fetch-and-add on the length, so `push` is wait-free apart
//! from one-time segment initialization. A reader that races with a push spins briefly
//! until the slot is published (this window is a few instructions long).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of segments. Segment `s` holds `BASE << s` slots, so 34 segments cover far
/// more entries than any realistic run can allocate.
const SEGMENTS: usize = 34;
/// Capacity of segment 0.
const BASE: usize = 64;

/// Returns `(segment, slot)` for a global index.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    // Segment s covers global indices [BASE*(2^s - 1), BASE*(2^(s+1) - 1)).
    let bucket = (index / BASE) + 1;
    let seg = (usize::BITS - 1 - bucket.leading_zeros()) as usize;
    let seg_start = BASE * ((1usize << seg) - 1);
    (seg, index - seg_start)
}

/// Capacity of segment `seg`.
#[inline]
fn segment_capacity(seg: usize) -> usize {
    BASE << seg
}

/// A lazily allocated segment: a boxed slice of once-initializable slots.
type Segment<T> = OnceLock<Box<[OnceLock<T>]>>;

/// A concurrent append-only vector with stable references.
pub struct AppendVec<T> {
    segments: Box<[Segment<T>]>,
    len: AtomicUsize,
    /// Set when a [`push_with`](Self::push_with) constructor panicked after its index
    /// was reserved: that slot can never be published, so readers must fail instead
    /// of spinning forever waiting for it.
    poisoned: AtomicBool,
}

impl<T> Default for AppendVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AppendVec<T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        let segments: Vec<OnceLock<Box<[OnceLock<T>]>>> =
            (0..SEGMENTS).map(|_| OnceLock::new()).collect();
        AppendVec {
            segments: segments.into_boxed_slice(),
            len: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of elements that have been assigned an index.
    ///
    /// An element counted here may still be in the tiny window between index assignment
    /// and publication; [`get`](Self::get) waits that window out.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if no element has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn segment(&self, seg: usize) -> &[OnceLock<T>] {
        self.segments[seg].get_or_init(|| {
            let cap = segment_capacity(seg);
            let v: Vec<OnceLock<T>> = (0..cap).map(|_| OnceLock::new()).collect();
            v.into_boxed_slice()
        })
    }

    /// Appends `value`, returning its index. Safe to call from any number of threads.
    pub fn push(&self, value: T) -> usize {
        self.push_with(|_| value)
    }

    /// Reserves the next index with one fetch-and-add, builds the value *from that
    /// index* with `make`, and publishes it. This is the lock-free replacement for the
    /// "lock, read len, construct, push" pattern: callers whose values embed their own
    /// index (heap ids, chunk ids) get atomic id reservation for free.
    ///
    /// Readers that race with the publication spin in [`get`](Self::get) for the few
    /// instructions between index assignment and the slot store (now including `make`,
    /// which should therefore stay cheap).
    ///
    /// If `make` panics, the reserved slot can never be filled; the vector is then
    /// **poisoned** and any [`get`](Self::get) that would otherwise wait for an
    /// unpublished slot panics instead of spinning forever, so the original panic
    /// stays fail-stop rather than turning into a livelock.
    pub fn push_with(&self, make: impl FnOnce(usize) -> T) -> usize {
        let index = self.len.fetch_add(1, Ordering::AcqRel);
        // From here until the slot is set, an unwind would strand the reserved
        // index: flag it so waiting readers fail fast.
        struct PoisonOnUnwind<'a> {
            flag: &'a AtomicBool,
            armed: bool,
        }
        impl Drop for PoisonOnUnwind<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.flag.store(true, Ordering::Release);
                }
            }
        }
        let mut guard = PoisonOnUnwind {
            flag: &self.poisoned,
            armed: true,
        };
        let (seg, slot) = locate(index);
        assert!(seg < SEGMENTS, "AppendVec capacity exhausted");
        let segment = self.segment(seg);
        let value = make(index);
        if segment[slot].set(value).is_err() {
            unreachable!("AppendVec slot {index} initialized twice");
        }
        guard.armed = false;
        index
    }

    /// Returns a reference to the element at `index`, or `None` if out of bounds.
    ///
    /// If the element's index has been assigned but the value is not yet published by
    /// the pushing thread, this spins until it appears.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len() {
            return None;
        }
        let (seg, slot) = locate(index);
        let segment = self.segment(seg);
        loop {
            if let Some(v) = segment[slot].get() {
                return Some(v);
            }
            assert!(
                !self.poisoned.load(Ordering::Acquire),
                "AppendVec poisoned: a push_with constructor panicked after reserving index"
            );
            std::hint::spin_loop();
        }
    }

    /// Iterates over all published elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len()).filter_map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn locate_covers_indices_contiguously() {
        let mut expected = Vec::new();
        for seg in 0..6 {
            for slot in 0..segment_capacity(seg) {
                expected.push((seg, slot));
            }
        }
        for (i, &(seg, slot)) in expected.iter().enumerate() {
            assert_eq!(locate(i), (seg, slot), "index {i}");
        }
    }

    #[test]
    fn push_get_sequential() {
        let v = AppendVec::new();
        for i in 0..1000usize {
            assert_eq!(v.push(i * 3), i);
        }
        assert_eq!(v.len(), 1000);
        for i in 0..1000usize {
            assert_eq!(*v.get(i).unwrap(), i * 3);
        }
        assert!(v.get(1000).is_none());
    }

    #[test]
    fn push_with_hands_out_the_assigned_index() {
        let v: AppendVec<usize> = AppendVec::new();
        for _ in 0..500 {
            let idx = v.push_with(|i| i * 7);
            assert_eq!(*v.get(idx).unwrap(), idx * 7);
        }
    }

    #[test]
    fn panicking_push_with_poisons_instead_of_hanging_readers() {
        let v: AppendVec<usize> = AppendVec::new();
        v.push(7);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            v.push_with(|_| panic!("constructor failure"))
        }));
        assert!(outcome.is_err());
        // Already-published slots stay readable…
        assert_eq!(*v.get(0).unwrap(), 7);
        // …but waiting on the stranded slot fails fast instead of spinning forever.
        let read = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| v.get(1)));
        assert!(read.is_err(), "reader of the stranded slot must panic");
    }

    #[test]
    fn concurrent_push_with_assigns_unique_self_describing_indices() {
        let v: Arc<AppendVec<usize>> = Arc::new(AppendVec::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    let idx = v.push_with(|i| i);
                    assert_eq!(*v.get(idx).unwrap(), idx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.len(), 8 * 2000);
        for i in 0..v.len() {
            assert_eq!(*v.get(i).unwrap(), i, "slot {i} holds its own index");
        }
    }

    #[test]
    fn empty_behaviour() {
        let v: AppendVec<u32> = AppendVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(v.get(0).is_none());
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn references_stay_valid_across_growth() {
        let v = AppendVec::new();
        v.push(String::from("first"));
        let first: &String = v.get(0).unwrap();
        for i in 0..10_000 {
            v.push(format!("x{i}"));
        }
        // `first` must still point at valid, unmoved data.
        assert_eq!(first, "first");
        assert_eq!(v.get(5000).unwrap(), "x4999");
    }

    #[test]
    fn concurrent_push_all_present() {
        let v = Arc::new(AppendVec::new());
        let threads = 8;
        let per_thread = 5000usize;
        let mut handles = Vec::new();
        for t in 0..threads {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    v.push(t * per_thread + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.len(), threads * per_thread);
        let mut seen: Vec<usize> = v.iter().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..threads * per_thread).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn concurrent_read_while_pushing() {
        let v = Arc::new(AppendVec::new());
        let writer = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                for i in 0..20_000usize {
                    v.push(i);
                }
            })
        };
        let reader = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                let mut max_seen = 0usize;
                for _ in 0..200 {
                    let n = v.len();
                    if n > 0 {
                        let x = *v.get(n - 1).unwrap();
                        assert!(x < 20_000);
                        max_seen = max_seen.max(n);
                    }
                }
                max_seen
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(v.len(), 20_000);
    }

    // Randomized (deterministic-seed) property checks; the build has no network
    // access, so these use a local LCG instead of proptest.
    #[test]
    fn prop_push_get_roundtrip() {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..32 {
            let len = (next() % 500) as usize;
            let values: Vec<u64> = (0..len).map(|_| next()).collect();
            let v = AppendVec::new();
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(v.push(x), i);
            }
            assert_eq!(v.len(), values.len());
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(*v.get(i).unwrap(), x);
            }
            let collected: Vec<u64> = v.iter().copied().collect();
            assert_eq!(collected, values);
        }
    }

    #[test]
    fn prop_locate_monotonic() {
        let mut state = 0x1234_5678_9ABC_DEF1u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..4096 {
            let i = (next() % 1_000_000) as usize;
            let (seg, slot) = locate(i);
            assert!(slot < segment_capacity(seg));
            // Start of the segment plus slot recovers the index.
            let seg_start = BASE * ((1usize << seg) - 1);
            assert_eq!(seg_start + slot, i);
        }
    }
}
