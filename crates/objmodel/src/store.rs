//! The chunk store: the global table mapping chunk ids to chunks, plus the chunk
//! memory lifecycle (free lists, recycling, allocation caches).
//!
//! This is the stand-in for MLton's address-masked chunk metadata: given an [`ObjPtr`],
//! `heapOf` needs the chunk's metadata in O(1). The store also carries the global memory
//! accounting used to reproduce the paper's Figure 13 (memory consumption and
//! inflation): total words currently held by live chunks and the peak ever reached.
//!
//! ## Chunk lifecycle
//!
//! A chunk moves through four states (see DESIGN.md §5 for the full story):
//!
//! ```text
//! fresh ──mint──▶ active ──retire──▶ quarantined ──reclaim──▶ free ──reuse──▶ active
//!                                                    │
//!                                                    └──(over max_free_words)──▶ released
//! ```
//!
//! * **active**: owned by a heap, counted in `live_words`.
//! * **quarantined**: retired by a collection. The chunk's contents stay readable —
//!   stale [`ObjPtr`]s held in Rust locals resolve to current data through the
//!   forwarding pointers the evacuation installed (the stack-map substitution,
//!   DESIGN.md §2) — so a retired chunk must not be reused while any task of the run
//!   that produced those pointers is still alive.
//! * **free**: past the reuse horizon — per run via the epoch watermark
//!   ([`ChunkStore::reclaim_watermark`], called at every run dispose) or globally at
//!   quiescence ([`ChunkStore::reclaim_retired`]) — parked on a size-classed
//!   lock-free free list and counted in `free_words`.
//! * **released**: the free pool exceeded [`ChunkStore::set_max_free_words`]; the chunk is
//!   dropped from all accounting, modelling a buffer returned to the OS. (The backing
//!   allocation itself stays in the table because `ObjPtr` resolution requires the
//!   id → chunk mapping to be stable; release is an accounting notion, exactly like
//!   retirement.)
//!
//! Reuse re-tags the chunk with its new owner, zeroes the previously used words, and
//! advances the chunk's *generation* so stale pointers from before the reuse are
//! detectable (see [`Chunk::generation`]).
//!
//! ## Allocation caches
//!
//! Fetching a chunk used to serialize every caller on one mutex plus the table append.
//! [`ChunkStore::alloc_chunk`] now serves default-sized requests from a small
//! per-thread shard cache, refilled in batches from the free lists (or minted in a
//! batch under one lock acquisition), so the hot allocation path touches only its own
//! shard. Cache hits are counted in [`StoreStats::alloc_cache_hits`].

use crate::appendvec::AppendVec;
use crate::chunk::{Chunk, ChunkId};
use crate::epoch::RunEpochs;
use crate::header::Header;
use crate::objptr::ObjPtr;
use crate::view::ObjView;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default chunk capacity in words (64 Ki words = 512 KiB).
pub const DEFAULT_CHUNK_WORDS: usize = 64 * 1024;

/// Number of size classes: class `k` holds chunks whose capacity lies in
/// `[default << k, default << (k+1))`; the top class is open-ended.
const N_CLASSES: usize = 24;

/// Number of allocation-cache shards (threads hash onto these).
const N_SHARDS: usize = 16;

/// Chunks fetched per cache refill / minted per batch.
const REFILL_BATCH: usize = 4;

/// Snapshot of the store's memory accounting and chunk lifecycle state.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Words currently held by active (non-retired) chunks.
    pub live_words: usize,
    /// Highest value `live_words` has ever reached.
    pub peak_words: usize,
    /// Total words ever allocated in chunks (monotone).
    pub total_allocated_words: usize,
    /// Words currently parked on the free lists and allocation caches.
    pub free_words: usize,
    /// Number of chunks ever created.
    pub chunks_created: usize,
    /// Number of retire events performed by collections (monotone; a recycled chunk
    /// can retire again).
    pub chunks_retired: usize,
    /// Number of times a free chunk was reused for a new owner (monotone).
    pub chunks_recycled: usize,
    /// Number of chunks whose buffers were released because the free pool exceeded
    /// its cap (terminal state).
    pub chunks_released: usize,
    /// Chunks currently owned by heaps.
    pub chunks_active: usize,
    /// Chunks retired but not yet past the reuse horizon.
    pub chunks_quarantined: usize,
    /// Chunks currently parked on free lists / allocation caches.
    pub chunks_free: usize,
    /// Default-sized chunk requests served directly from a per-thread cache.
    pub alloc_cache_hits: usize,
    /// Chunks whose quarantine exit (to the free lists or release) was driven by the
    /// epoch watermark ([`ChunkStore::reclaim_watermark`]) rather than by global
    /// quiescence.
    pub epoch_reclaims: usize,
    /// Runs currently registered as active with the store's [`RunEpochs`].
    pub active_runs: usize,
    /// Highest number of simultaneously active runs ever observed.
    pub active_runs_peak: usize,
    /// Words currently held by quarantined chunks — the watermark lag: memory
    /// retired but not yet past its run's reuse horizon.
    pub quarantined_words: usize,
}

/// A lock-free Treiber stack of chunk ids, linked through [`Chunk::free_next`].
///
/// The head packs `(tag << 32) | index` with `u32::MAX` as the empty index; the tag
/// advances on every successful push and pop, which rules out ABA (chunks are never
/// deallocated, so reading a stale `free_next` is harmless — the CAS then fails on
/// the tag). Deliberately no `Default`: a zeroed head would decode as "chunk 0 is
/// free", not as empty.
struct FreeStack {
    head: AtomicU64,
}

const EMPTY: u32 = u32::MAX;

impl FreeStack {
    fn new() -> FreeStack {
        FreeStack {
            head: AtomicU64::new(EMPTY as u64),
        }
    }

    fn push(&self, table: &AppendVec<Arc<Chunk>>, id: ChunkId) {
        let chunk = table.get(id.0 as usize).expect("pushing unknown chunk");
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            chunk.free_next.store(head as u32, Ordering::Release);
            let next = ((head >> 32).wrapping_add(1) << 32) | id.0 as u64;
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    fn pop(&self, table: &AppendVec<Arc<Chunk>>) -> Option<ChunkId> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let idx = head as u32;
            if idx == EMPTY {
                return None;
            }
            let chunk = table.get(idx as usize).expect("free list holds unknown id");
            let next_idx = chunk.free_next.load(Ordering::Acquire);
            let next = ((head >> 32).wrapping_add(1) << 32) | next_idx as u64;
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(ChunkId(idx)),
                Err(h) => head = h,
            }
        }
    }
}

/// One allocation-cache shard: a small stash of ready-to-use default-class chunks.
#[derive(Default)]
struct CacheShard {
    ids: parking_lot::Mutex<Vec<ChunkId>>,
}

/// The global chunk table plus memory accounting and the chunk lifecycle.
pub struct ChunkStore {
    chunks: AppendVec<Arc<Chunk>>,
    /// Serializes id assignment with table insertion so `chunk.id()` always equals the
    /// chunk's index. Minting is rare — default-sized requests are batched through the
    /// allocation caches — so this lock is never contended in practice.
    alloc_lock: parking_lot::Mutex<()>,
    default_chunk_words: usize,
    /// Size-classed free lists of reusable chunks.
    free: [FreeStack; N_CLASSES],
    /// Chunks retired by collections, awaiting their reuse horizon. Each record
    /// carries `retired_at`: the epoch of the run the chunk was retired on behalf of
    /// (or, for untagged chunks, the latest epoch issued at retirement). The chunk
    /// becomes reusable once the min-active-epoch watermark passes that stamp.
    quarantine: parking_lot::Mutex<Vec<(ChunkId, u64)>>,
    /// Run-epoch registry: the per-run reuse horizons (see [`RunEpochs`]).
    run_epochs: RunEpochs,
    /// Per-thread stashes of default-class chunks (see module docs).
    shards: Box<[CacheShard]>,
    /// Cap on `free_words`: reclaimed chunks beyond it are released instead of reused.
    max_free_words: AtomicUsize,
    /// Source of collection epochs (see [`Chunk::gc_state`]): each collection draws a
    /// fresh epoch, so concurrent collections of disjoint zones never confuse each
    /// other's chunk tags and tags never need clearing.
    gc_epochs: AtomicU64,

    // -- accounting gauges and counters ------------------------------------
    live_words: AtomicUsize,
    peak_words: AtomicUsize,
    total_words: AtomicUsize,
    free_words: AtomicUsize,
    chunks_retired: AtomicUsize,
    chunks_recycled: AtomicUsize,
    chunks_released: AtomicUsize,
    chunks_active: AtomicUsize,
    chunks_quarantined: AtomicUsize,
    chunks_free: AtomicUsize,
    alloc_cache_hits: AtomicUsize,
    epoch_reclaims: AtomicUsize,
    quarantined_words: AtomicUsize,
}

impl ChunkStore {
    /// Creates a store whose freshly allocated chunks default to `default_chunk_words`
    /// words (larger objects get a dedicated chunk of exactly the needed size).
    pub fn new(default_chunk_words: usize) -> Self {
        assert!(
            default_chunk_words >= 16,
            "chunks must hold at least one small object"
        );
        ChunkStore {
            chunks: AppendVec::new(),
            alloc_lock: parking_lot::Mutex::new(()),
            default_chunk_words,
            free: std::array::from_fn(|_| FreeStack::new()),
            quarantine: parking_lot::Mutex::new(Vec::new()),
            run_epochs: RunEpochs::new(),
            shards: (0..N_SHARDS).map(|_| CacheShard::default()).collect(),
            max_free_words: AtomicUsize::new(usize::MAX),
            gc_epochs: AtomicU64::new(0),
            live_words: AtomicUsize::new(0),
            peak_words: AtomicUsize::new(0),
            total_words: AtomicUsize::new(0),
            free_words: AtomicUsize::new(0),
            chunks_retired: AtomicUsize::new(0),
            chunks_recycled: AtomicUsize::new(0),
            chunks_released: AtomicUsize::new(0),
            chunks_active: AtomicUsize::new(0),
            chunks_quarantined: AtomicUsize::new(0),
            chunks_free: AtomicUsize::new(0),
            alloc_cache_hits: AtomicUsize::new(0),
            epoch_reclaims: AtomicUsize::new(0),
            quarantined_words: AtomicUsize::new(0),
        }
    }

    /// The store's run-epoch registry. Runtimes register every run here
    /// ([`RunEpochs::begin`] / [`RunEpochs::end`]) so retired chunks can be
    /// reclaimed per run by [`ChunkStore::reclaim_watermark`] instead of waiting
    /// for global quiescence.
    pub fn run_epochs(&self) -> &RunEpochs {
        &self.run_epochs
    }

    /// Creates a store with the default chunk size.
    pub fn with_default_chunk_size() -> Self {
        Self::new(DEFAULT_CHUNK_WORDS)
    }

    /// The default chunk capacity in words.
    pub fn default_chunk_words(&self) -> usize {
        self.default_chunk_words
    }

    /// Sets the cap on the free pool: when [`ChunkStore::reclaim_retired`] would push
    /// `free_words` beyond this, the excess chunks are released instead of kept for
    /// reuse. Defaults to unlimited.
    pub fn set_max_free_words(&self, words: usize) {
        self.max_free_words.store(words, Ordering::Relaxed);
    }

    /// Size class of a chunk of `capacity` words (see [`N_CLASSES`]).
    fn class_of(&self, capacity: usize) -> usize {
        let mut class = 0;
        while class + 1 < N_CLASSES && capacity >= (self.default_chunk_words << (class + 1)) {
            class += 1;
        }
        class
    }

    /// Smallest class every chunk of which satisfies a request of `min_words`
    /// (oversized mints are rounded up to this class's boundary, so class
    /// membership and fit coincide everywhere but the open-ended top class).
    fn class_for_request(&self, min_words: usize) -> usize {
        let mut class = 0;
        while class + 1 < N_CLASSES && (self.default_chunk_words << class) < min_words {
            class += 1;
        }
        class
    }

    /// The calling thread's cache shard.
    fn shard(&self) -> &CacheShard {
        use std::cell::Cell;
        static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        let slot = THREAD_SLOT.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                s.set(v);
            }
            v
        });
        &self.shards[slot % N_SHARDS]
    }

    /// Mints a brand-new chunk (id == table index) in the **active** state,
    /// attributed to the run holding `run_tag` (0 = untracked).
    fn mint_active(&self, owner: u32, n_words: usize, run_tag: u64) -> Arc<Chunk> {
        let chunk = {
            let _guard = self.alloc_lock.lock();
            self.mint_locked(owner, n_words)
        };
        chunk.set_run_tag(run_tag);
        self.total_words.fetch_add(n_words, Ordering::Relaxed);
        self.chunks_active.fetch_add(1, Ordering::Relaxed);
        self.note_live(n_words);
        chunk
    }

    /// Table insertion under `alloc_lock` (shared by single and batched minting).
    fn mint_locked(&self, owner: u32, n_words: usize) -> Arc<Chunk> {
        let id = ChunkId(self.chunks.len() as u32);
        let chunk = Arc::new(Chunk::new(id, owner, n_words));
        let idx = self.chunks.push(Arc::clone(&chunk));
        debug_assert_eq!(idx, id.0 as usize, "chunk id / index mismatch");
        chunk
    }

    fn note_live(&self, n_words: usize) {
        let live = self.live_words.fetch_add(n_words, Ordering::Relaxed) + n_words;
        self.peak_words.fetch_max(live, Ordering::Relaxed);
    }

    /// Moves a free chunk into the active state for `owner`, recycling (resetting and
    /// re-tagging) it if it has been used before.
    fn activate_free(&self, id: ChunkId, owner: u32, run_tag: u64) -> Arc<Chunk> {
        let chunk = Arc::clone(self.chunk(id));
        if chunk.is_retired() {
            chunk.recycle(owner);
            self.chunks_recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            // Fresh chunk parked by a batched mint: never used, just take ownership.
            chunk.set_owner(owner);
        }
        chunk.set_run_tag(run_tag);
        let cap = chunk.capacity();
        self.free_words.fetch_sub(cap, Ordering::Relaxed);
        self.chunks_free.fetch_sub(1, Ordering::Relaxed);
        self.chunks_active.fetch_add(1, Ordering::Relaxed);
        self.note_live(cap);
        chunk
    }

    /// Allocates a chunk owned by raw heap `owner`, large enough for at least
    /// `min_words` words: from the calling thread's cache, then the free lists, then
    /// freshly minted. The chunk carries no run attribution (`run_tag` 0); heaps of
    /// epoch-tracked runs use [`ChunkStore::alloc_chunk_for_run`] instead.
    pub fn alloc_chunk(&self, owner: u32, min_words: usize) -> Arc<Chunk> {
        self.alloc_chunk_for_run(owner, min_words, 0)
    }

    /// As [`ChunkStore::alloc_chunk`], but attributes the chunk to the run holding
    /// epoch `run_tag`: retirement stamps the quarantine record with that epoch, so
    /// the chunk is reclaimed as soon as that run (and every older one) disposes.
    pub fn alloc_chunk_for_run(&self, owner: u32, min_words: usize, run_tag: u64) -> Arc<Chunk> {
        if min_words <= self.default_chunk_words {
            // Common case: a default-class chunk via the per-thread cache.
            let shard = self.shard();
            if let Some(id) = shard.ids.lock().pop() {
                self.alloc_cache_hits.fetch_add(1, Ordering::Relaxed);
                return self.activate_free(id, owner, run_tag);
            }
            // Refill: batch-pop recycled chunks, else batch-mint fresh ones.
            let mut batch: Vec<ChunkId> = Vec::with_capacity(REFILL_BATCH);
            while batch.len() < REFILL_BATCH {
                match self.free[0].pop(&self.chunks) {
                    Some(id) => batch.push(id),
                    None => break,
                }
            }
            if batch.is_empty() {
                let n = self.default_chunk_words;
                // The cache never stashes more than the configured retention pool:
                // `batch - 1` chunks stay behind as free words after one is handed
                // out, so the batch shrinks when `max_free_words` is small (down to
                // 1, i.e. no caching at all).
                let limit = self.max_free_words.load(Ordering::Relaxed);
                let batch_size = (limit / n).saturating_add(1).clamp(1, REFILL_BATCH);
                let minted = {
                    let _guard = self.alloc_lock.lock();
                    (0..batch_size)
                        .map(|_| self.mint_locked(crate::chunk::RAW_HEAP_NONE, n))
                        .collect::<Vec<_>>()
                };
                self.total_words
                    .fetch_add(n * minted.len(), Ordering::Relaxed);
                // All minted chunks start in the free state; the one we hand out is
                // activated below like any other free chunk.
                self.free_words
                    .fetch_add(n * minted.len(), Ordering::Relaxed);
                self.chunks_free.fetch_add(minted.len(), Ordering::Relaxed);
                batch.extend(minted.iter().map(|c| c.id()));
            }
            let take = batch.pop().expect("refill produced at least one chunk");
            if !batch.is_empty() {
                shard.ids.lock().append(&mut batch);
            }
            return self.activate_free(take, owner, run_tag);
        }

        // Oversized request: search the free classes before minting a dedicated
        // chunk. Oversized mints are rounded **up to their class boundary**
        // (`default << k`), so every chunk's capacity meets its class guarantee
        // exactly: an identical request on a rerun (the common case) pops the very
        // chunk it retired on the first attempt, and chunks in `(1x, 2x)` of the
        // default size cannot pollute class 0. The capacity check only matters in
        // the open-ended top class.
        let class = self.class_for_request(min_words);
        for k in class..(class + 2).min(N_CLASSES) {
            if let Some(id) = self.free[k].pop(&self.chunks) {
                if self.chunk(id).capacity() >= min_words {
                    return self.activate_free(id, owner, run_tag);
                }
                // Top-class chunks are open-ended; a too-small one goes back.
                self.free[k].push(&self.chunks, id);
            }
        }
        let rounded = (self.default_chunk_words << class).max(min_words);
        self.mint_active(owner, rounded, run_tag)
    }

    /// True if an object with `header` needs a dedicated chunk (it does not fit a
    /// default-sized one).
    #[inline]
    pub fn needs_dedicated_chunk(&self, header: Header) -> bool {
        header.size_words() > self.default_chunk_words
    }

    /// Allocates a dedicated chunk for one large object and the object inside it,
    /// returning both. Callers splice the chunk into their own chunk list *without*
    /// making it the current bump chunk, so a large-object detour never abandons a
    /// partially filled chunk (the shared body of the large-object paths in
    /// `Heap::alloc_obj`, `FlatHeap::alloc`, and both collectors' to-space
    /// allocators).
    pub fn alloc_dedicated(&self, owner: u32, header: Header) -> (Arc<Chunk>, ObjPtr) {
        self.alloc_dedicated_for_run(owner, header, 0)
    }

    /// As [`ChunkStore::alloc_dedicated`], attributed to the run holding `run_tag`
    /// (see [`ChunkStore::alloc_chunk_for_run`]).
    pub fn alloc_dedicated_for_run(
        &self,
        owner: u32,
        header: Header,
        run_tag: u64,
    ) -> (Arc<Chunk>, ObjPtr) {
        let chunk = self.alloc_chunk_for_run(owner, header.size_words(), run_tag);
        let ptr = self
            .alloc_in_chunk(&chunk, header)
            .expect("dedicated chunk too small for the object it was sized for");
        (chunk, ptr)
    }

    /// Looks up a chunk by id.
    #[inline]
    pub fn chunk(&self, id: ChunkId) -> &Arc<Chunk> {
        self.chunks
            .get(id.0 as usize)
            .expect("dangling ChunkId: chunk not present in store")
    }

    /// Number of chunks ever created (including retired ones).
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Draws a fresh, never-reissued collection epoch (starting at 1, so the zero
    /// tag of a fresh chunk never matches any collection).
    pub fn next_gc_epoch(&self) -> u64 {
        self.gc_epochs.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Snapshot of the chunks currently quarantined (retired but not yet past their
    /// reuse horizon). For inspection and tests; collections must use
    /// [`ChunkStore::with_quarantine`] instead, which holds the quarantine closed
    /// while they stamp membership.
    pub fn quarantined_chunks(&self) -> Vec<ChunkId> {
        self.quarantine.lock().iter().map(|&(id, _)| id).collect()
    }

    /// Runs `f` over the current quarantine records `(chunk, retired_at)` **with the
    /// quarantine locked**: no chunk can be reclaimed (and recycled to a new owner)
    /// between being observed by `f` and `f` acting on it. Collections use this at
    /// zone assembly to stamp retired chunks whose owner resolves into the zone —
    /// with quiescence-free reclaim, a plain snapshot could see a chunk that the
    /// watermark hands to a new heap before the collection stamps it from-space,
    /// which would retire live data. Keep `f` short; it blocks retirement and
    /// reclamation.
    pub fn with_quarantine<R>(&self, f: impl FnOnce(&[(ChunkId, u64)]) -> R) -> R {
        f(&self.quarantine.lock())
    }

    /// Retires a chunk after its live contents were evacuated: memory accounting
    /// drops its words and the chunk enters the quarantine, stamped with its reuse
    /// horizon — the owning run's epoch (the chunk's run tag) when it has one, else
    /// the latest epoch issued (conservative: every run alive now must dispose
    /// first). [`ChunkStore::reclaim_watermark`] or [`ChunkStore::reclaim_retired`]
    /// later move it to the free lists.
    pub fn retire_chunk(&self, id: ChunkId) {
        let chunk = self.chunk(id);
        if chunk.try_retire() {
            let run_tag = chunk.run_tag();
            let retired_at = if run_tag != 0 {
                run_tag
            } else {
                self.run_epochs.stamp()
            };
            self.live_words
                .fetch_sub(chunk.capacity(), Ordering::Relaxed);
            self.quarantined_words
                .fetch_add(chunk.capacity(), Ordering::Relaxed);
            self.chunks_retired.fetch_add(1, Ordering::Relaxed);
            self.chunks_active.fetch_sub(1, Ordering::Relaxed);
            self.chunks_quarantined.fetch_add(1, Ordering::Relaxed);
            self.quarantine.lock().push((id, retired_at));
        }
    }

    /// Moves one reclaimed chunk out of quarantine accounting and onto its free list,
    /// or releases it when the free pool is over `cap_limit`. Returns `true` if the
    /// chunk was parked for reuse.
    fn park_or_release(&self, id: ChunkId, cap_limit: usize) -> bool {
        let chunk = self.chunk(id);
        debug_assert!(chunk.is_retired(), "quarantine holds a non-retired chunk");
        let cap = chunk.capacity();
        self.chunks_quarantined.fetch_sub(1, Ordering::Relaxed);
        self.quarantined_words.fetch_sub(cap, Ordering::Relaxed);
        if self.free_words.load(Ordering::Relaxed) + cap <= cap_limit {
            self.free_words.fetch_add(cap, Ordering::Relaxed);
            self.chunks_free.fetch_add(1, Ordering::Relaxed);
            self.free[self.class_of(cap)].push(&self.chunks, id);
            true
        } else {
            // Over the cap: model returning the buffer to the OS. The chunk stays
            // in the table (ObjPtr resolution needs id stability) but leaves all
            // accounting for good.
            self.chunks_released.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Moves every quarantined chunk whose reuse horizon has passed — its
    /// `retired_at` stamp is strictly below the min-active-epoch watermark — to the
    /// free lists (or releases it over the free-pool cap). Returns the number of
    /// chunks made reusable.
    ///
    /// This is the quiescence-free reclaim: runtimes call it at every run dispose,
    /// so one run's chunks recycle while other runs are still mid-flight. Soundness:
    /// only tasks of the run a chunk was retired for can hold stale [`ObjPtr`]s into
    /// it (pointers must not cross runs — DESIGN.md §5), and `retired_at` is that
    /// run's epoch, so `retired_at < min_active` means every such task is gone.
    pub fn reclaim_watermark(&self) -> usize {
        let min_active = self.run_epochs.min_active();
        let cap_limit = self.max_free_words.load(Ordering::Relaxed);
        let eligible: Vec<ChunkId> = {
            let mut q = self.quarantine.lock();
            let mut keep = Vec::with_capacity(q.len());
            let mut take = Vec::new();
            for (id, retired_at) in q.drain(..) {
                if retired_at < min_active {
                    take.push(id);
                } else {
                    keep.push((id, retired_at));
                }
            }
            *q = keep;
            take
        };
        let mut freed = 0;
        for id in eligible {
            if self.park_or_release(id, cap_limit) {
                freed += 1;
            }
            self.epoch_reclaims.fetch_add(1, Ordering::Relaxed);
        }
        freed
    }

    /// Moves every quarantined chunk to the free lists (or releases it once the free
    /// pool exceeds [`ChunkStore::set_max_free_words`]), making the memory retired by
    /// past collections available for reuse. This is the **global** horizon — the
    /// degenerate single-run case of [`ChunkStore::reclaim_watermark`] and ablation
    /// A5; it additionally flushes the per-thread allocation caches, which only a
    /// quiescent point may do.
    ///
    /// # Reuse horizon
    ///
    /// The caller asserts that no stale [`ObjPtr`] into a quarantined chunk will be
    /// dereferenced again. Retired chunks stay readable precisely so that pointers
    /// held in Rust locals keep resolving through forwarding (DESIGN.md §2); those
    /// locals die with the tasks of the run that created them, so the runtimes call
    /// this between runs, when no task is live. Returns the number of chunks moved
    /// to the free lists.
    pub fn reclaim_retired(&self) -> usize {
        let cap_limit = self.max_free_words.load(Ordering::Relaxed);
        // First pass every per-thread stash through the cap: the horizon is a
        // quiescent point, and flushing prevents chunks from being stranded in the
        // cache of a thread that stops allocating. Stash chunks are already in the
        // free state, so over-cap ones move free → released.
        for shard in self.shards.iter() {
            for id in shard.ids.lock().drain(..) {
                let cap = self.chunk(id).capacity();
                if self.free_words.load(Ordering::Relaxed) <= cap_limit {
                    self.free[self.class_of(cap)].push(&self.chunks, id);
                } else {
                    self.free_words.fetch_sub(cap, Ordering::Relaxed);
                    self.chunks_free.fetch_sub(1, Ordering::Relaxed);
                    self.chunks_released.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // The quarantine is drained *after* the stashes, so freshly retired chunks
        // sit on top of the LIFO free stacks and are the first ones reused.
        let drained: Vec<(ChunkId, u64)> = std::mem::take(&mut *self.quarantine.lock());
        let mut freed = 0;
        for (id, _retired_at) in drained {
            if self.park_or_release(id, cap_limit) {
                freed += 1;
            }
        }
        freed
    }

    /// Resolves an object pointer to a view of the object.
    ///
    /// Pointers into retired chunks remain dereferenceable until the chunk passes the
    /// reuse horizon: retirement is an accounting notion (the evacuated from-space no
    /// longer counts towards live memory), and stale pointers held outside the managed
    /// heap resolve to current data through the forwarding pointers the evacuation
    /// installed. See DESIGN.md §2 (stack-map substitution) and §5 (reuse horizon)
    /// for why this is the faithful simulation choice.
    #[inline]
    pub fn view(&self, ptr: ObjPtr) -> ObjView<'_> {
        debug_assert!(!ptr.is_null(), "dereferencing NULL ObjPtr");
        let chunk = self.chunk(ptr.chunk());
        ObjView::new(chunk, ptr.offset())
    }

    /// Allocates an object with the given header inside `chunk`, returning its pointer,
    /// or `None` if the chunk is full.
    pub fn alloc_in_chunk(&self, chunk: &Chunk, header: Header) -> Option<ObjPtr> {
        let off = chunk.try_bump(header.size_words())?;
        let ptr = ObjPtr::new(chunk.id(), off);
        let view = ObjView::new(chunk, off);
        view.init(header);
        Some(ptr)
    }

    /// As [`ChunkStore::alloc_in_chunk`], but initializes only the header and the
    /// forwarding slot, leaving the fields as the chunk's raw words (see
    /// [`ObjView::init_for_copy`]). For evacuation-style copies that overwrite every
    /// field before publishing the object; skips one store per pointer field.
    pub fn alloc_in_chunk_for_copy(&self, chunk: &Chunk, header: Header) -> Option<ObjPtr> {
        let off = chunk.try_bump(header.size_words())?;
        let ptr = ObjPtr::new(chunk.id(), off);
        ObjView::new(chunk, off).init_for_copy(header);
        Some(ptr)
    }

    /// Raw heap id recorded on the chunk containing `ptr` (the heap the object was
    /// *allocated* into; the heap registry resolves merges on top of this).
    #[inline]
    pub fn chunk_owner(&self, ptr: ObjPtr) -> u32 {
        self.chunk(ptr.chunk()).owner()
    }

    /// Shortcuts every hop of the forwarding chain `from → … → end` directly to
    /// `end`, returning the number of hops rewritten.
    ///
    /// `end` must be reachable from `from` by following forwarding pointers (the
    /// caller just walked the chain). Safe without any lock by the monotonicity
    /// argument of [`ObjView::compress_fwd`]; a failed CAS (a concurrent
    /// compression or chain extension won) is simply skipped — the chain is intact
    /// either way, so this never retries and never loops.
    pub fn compress_fwd_chain(&self, from: ObjPtr, end: ObjPtr) -> u64 {
        let mut walk = from;
        let mut done = 0u64;
        while walk != end {
            let v = self.view(walk);
            let next = v.fwd();
            if next.is_null() || next == end {
                break;
            }
            if v.compress_fwd(next, end) {
                done += 1;
            }
            walk = next;
        }
        done
    }

    /// Current memory accounting snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            live_words: self.live_words.load(Ordering::Relaxed),
            peak_words: self.peak_words.load(Ordering::Relaxed),
            total_allocated_words: self.total_words.load(Ordering::Relaxed),
            free_words: self.free_words.load(Ordering::Relaxed),
            chunks_created: self.chunks.len(),
            chunks_retired: self.chunks_retired.load(Ordering::Relaxed),
            chunks_recycled: self.chunks_recycled.load(Ordering::Relaxed),
            chunks_released: self.chunks_released.load(Ordering::Relaxed),
            chunks_active: self.chunks_active.load(Ordering::Relaxed),
            chunks_quarantined: self.chunks_quarantined.load(Ordering::Relaxed),
            chunks_free: self.chunks_free.load(Ordering::Relaxed),
            alloc_cache_hits: self.alloc_cache_hits.load(Ordering::Relaxed),
            epoch_reclaims: self.epoch_reclaims.load(Ordering::Relaxed),
            active_runs: self.run_epochs.active_runs(),
            active_runs_peak: self.run_epochs.active_runs_peak(),
            quarantined_words: self.quarantined_words.load(Ordering::Relaxed),
        }
    }
}

impl Default for ChunkStore {
    fn default() -> Self {
        Self::with_default_chunk_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjKind;
    use std::sync::Arc as StdArc;

    #[test]
    fn alloc_chunk_and_lookup() {
        let store = ChunkStore::new(1024);
        let c = store.alloc_chunk(3, 0);
        assert_eq!(c.capacity(), 1024);
        assert_eq!(c.owner(), 3);
        let looked = store.chunk(c.id());
        assert_eq!(looked.id(), c.id());
    }

    #[test]
    fn big_object_gets_dedicated_chunk() {
        let store = ChunkStore::new(64);
        let c = store.alloc_chunk(0, 1_000);
        assert!(c.capacity() >= 1_000);
    }

    #[test]
    fn alloc_object_and_view() {
        let store = ChunkStore::new(1024);
        let c = store.alloc_chunk(0, 0);
        let h = Header::new(3, 1, ObjKind::Tuple);
        let p = store.alloc_in_chunk(&c, h).unwrap();
        let v = store.view(p);
        assert_eq!(v.n_fields(), 3);
        assert_eq!(v.n_ptr(), 1);
        v.set_field(2, 99);
        assert_eq!(store.view(p).field(2), 99);
    }

    #[test]
    fn alloc_until_full_returns_none() {
        let store = ChunkStore::new(16);
        let c = store.alloc_chunk(0, 0);
        let h = Header::new(2, 0, ObjKind::Tuple); // 4 words
        let mut count = 0;
        while store.alloc_in_chunk(&c, h).is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn memory_accounting_tracks_peak_and_retire() {
        let store = ChunkStore::new(100);
        let a = store.alloc_chunk(0, 0);
        let b = store.alloc_chunk(0, 0);
        let s = store.stats();
        assert_eq!(s.live_words, 200);
        assert_eq!(s.peak_words, 200);
        store.retire_chunk(a.id());
        let s = store.stats();
        assert_eq!(s.live_words, 100);
        assert_eq!(s.peak_words, 200);
        assert_eq!(s.chunks_retired, 1);
        // Retiring twice is idempotent.
        store.retire_chunk(a.id());
        assert_eq!(store.stats().live_words, 100);
        store.retire_chunk(b.id());
        assert_eq!(store.stats().live_words, 0);
        assert_eq!(store.stats().peak_words, 200);
    }

    #[test]
    fn chunk_owner_reflects_allocation_heap() {
        let store = ChunkStore::new(64);
        let c = store.alloc_chunk(42, 0);
        let p = store
            .alloc_in_chunk(&c, Header::new(1, 0, ObjKind::Ref))
            .unwrap();
        assert_eq!(store.chunk_owner(p), 42);
    }

    #[test]
    fn concurrent_chunk_allocation_ids_are_unique_and_resolvable() {
        let store = StdArc::new(ChunkStore::new(64));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let store = StdArc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..200 {
                    let c = store.alloc_chunk(t, 0);
                    ids.push(c.id());
                }
                ids
            }));
        }
        let mut all: Vec<ChunkId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // All returned chunks must be resolvable to a chunk with that id.
        for &id in &all {
            let c = store.chunk(id);
            assert_eq!(c.id(), id);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 200, "chunk ids must be unique");
    }

    // -- lifecycle: recycling, caches, release, conservation -------------------

    /// Keeps allocating until the calling thread's cache (pre-filled by batched
    /// minting) is empty, so the next allocation must consult the free lists.
    fn drain_cache(store: &ChunkStore) -> Vec<StdArc<Chunk>> {
        (0..REFILL_BATCH).map(|_| store.alloc_chunk(0, 0)).collect()
    }

    #[test]
    fn retire_reclaim_recycle_roundtrip() {
        let store = ChunkStore::new(128);
        let held = drain_cache(&store);
        let a = StdArc::clone(&held[0]);
        let p = store
            .alloc_in_chunk(&a, Header::new(2, 0, ObjKind::Tuple))
            .unwrap();
        store.view(p).set_field(0, 7);
        let gen_before = a.generation();
        store.retire_chunk(a.id());
        // Quarantined: contents still readable, nothing reusable yet.
        assert_eq!(store.view(p).field(0), 7);
        assert_eq!(store.stats().chunks_quarantined, 1);
        assert_eq!(store.stats().free_words, 0);

        assert_eq!(store.reclaim_retired(), 1);
        let s = store.stats();
        assert_eq!(s.chunks_quarantined, 0);
        assert_eq!(s.chunks_free, 1);
        assert_eq!(s.free_words, 128);

        // The next default-sized request (cache is empty) reuses the same buffer for
        // the new owner.
        let b = store.alloc_chunk(9, 0);
        assert_eq!(b.id(), a.id(), "free chunk must be reused");
        assert_eq!(b.owner(), 9);
        assert_eq!(b.generation(), gen_before + 1);
        assert!(!b.is_retired());
        assert_eq!(b.used(), 0, "object area must be reset");
        let s = store.stats();
        assert_eq!(s.chunks_recycled, 1);
        assert_eq!(s.free_words, 0);
        assert_eq!(s.live_words, 128 * REFILL_BATCH);
    }

    #[test]
    fn reclaim_releases_beyond_the_free_cap() {
        let store = ChunkStore::new(100);
        store.set_max_free_words(150); // room for one 100-word chunk, not two
        let held = drain_cache(&store); // cache empty, free_words == 0
        store.retire_chunk(held[0].id());
        store.retire_chunk(held[1].id());
        assert_eq!(store.reclaim_retired(), 1);
        let s = store.stats();
        assert_eq!(s.chunks_free, 1);
        assert_eq!(s.chunks_released, 1);
        assert_eq!(s.free_words, 100);
    }

    #[test]
    fn default_requests_hit_the_allocation_cache() {
        let store = ChunkStore::new(64);
        // The first allocation mints a batch; later ones on this thread hit the cache.
        let _ = store.alloc_chunk(0, 0);
        let before = store.stats().alloc_cache_hits;
        for _ in 0..REFILL_BATCH - 1 {
            let _ = store.alloc_chunk(0, 0);
        }
        let s = store.stats();
        assert!(
            s.alloc_cache_hits >= before + REFILL_BATCH - 1,
            "cache hits: {} -> {}",
            before,
            s.alloc_cache_hits
        );
    }

    #[test]
    fn oversized_chunks_recycle_through_size_classes() {
        let store = ChunkStore::new(64);
        let big = store.alloc_chunk(1, 1_000);
        let big_id = big.id();
        store.retire_chunk(big_id);
        store.reclaim_retired();
        // A default-sized request must not get the 1000-word chunk's slot…
        let small = store.alloc_chunk(2, 0);
        assert_ne!(small.id(), big_id);
        // …but a request its class can serve (class k guarantees `default << k`
        // words, here 512) reuses it.
        let again = store.alloc_chunk(3, 500);
        assert_eq!(again.id(), big_id);
        assert!(again.capacity() >= 500);
        assert_eq!(again.owner(), 3);
    }

    /// chunks_created == active + quarantined + free + released at **every** point of
    /// a randomized interleaving — including mid-overlap, while several run epochs
    /// are active and the watermark reclaims some runs' chunks but not others'.
    #[test]
    fn prop_lifecycle_conservation() {
        let mut state = 0xFEED_FACE_0123_4567u64;
        // Discard the LCG's low bits: modulo-8 arm selection on the raw state would
        // cycle with period 8 and starve arms.
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let store = ChunkStore::new(64);
        store.set_max_free_words(64 * 8);
        let mut owned: Vec<(ChunkId, u64)> = Vec::new();
        // Simulated overlapping runs: epochs currently active.
        let mut runs: Vec<u64> = Vec::new();
        for step in 0..600 {
            match next() % 8 {
                0 | 1 => {
                    let min = if next() % 4 == 0 {
                        64 + (next() % 512) as usize
                    } else {
                        0
                    };
                    // Allocate on behalf of a random active run (or untracked).
                    let tag = if runs.is_empty() || next() % 4 == 0 {
                        0
                    } else {
                        runs[(next() as usize) % runs.len()]
                    };
                    owned.push((
                        store
                            .alloc_chunk_for_run((next() % 7) as u32, min, tag)
                            .id(),
                        tag,
                    ));
                }
                2 | 3 => {
                    if !owned.is_empty() {
                        let i = (next() as usize) % owned.len();
                        store.retire_chunk(owned.swap_remove(i).0);
                    }
                }
                4 => {
                    if runs.len() < 4 {
                        runs.push(store.run_epochs().begin());
                    }
                }
                5 => {
                    if !runs.is_empty() {
                        let i = (next() as usize) % runs.len();
                        let epoch = runs.swap_remove(i);
                        // Dispose: retire the run's remaining chunks, end its epoch,
                        // then advance the watermark — the runtime lifecycle.
                        let mut remaining = Vec::new();
                        owned.retain(|&(id, tag)| {
                            if tag == epoch {
                                remaining.push(id);
                                false
                            } else {
                                true
                            }
                        });
                        for id in remaining {
                            store.retire_chunk(id);
                        }
                        store.run_epochs().end(epoch);
                        store.reclaim_watermark();
                    }
                }
                6 => {
                    store.reclaim_watermark();
                }
                _ => {
                    if runs.is_empty() {
                        // Global quiescence only: the full-horizon reclaim.
                        store.reclaim_retired();
                    }
                }
            }
            let s = store.stats();
            assert_eq!(
                s.chunks_created,
                s.chunks_active + s.chunks_quarantined + s.chunks_free + s.chunks_released,
                "conservation violated at step {step}: {s:?}"
            );
            assert_eq!(s.chunks_active, owned.len(), "active count at step {step}");
        }
        assert!(store.stats().chunks_recycled > 0, "recycling must occur");
        assert!(
            store.stats().chunks_released > 0,
            "release cap must trigger"
        );
        assert!(
            store.stats().epoch_reclaims > 0,
            "watermark reclaim must trigger mid-overlap"
        );
    }

    /// The watermark frees exactly the chunks whose owning run (and every older run)
    /// has disposed, while younger runs keep theirs quarantined — and never frees a
    /// chunk whose run is still active.
    #[test]
    fn watermark_reclaims_per_run_without_quiescence() {
        let store = ChunkStore::new(128);
        let held = drain_cache(&store); // empty the cache so nothing hides there
        for c in held {
            store.retire_chunk(c.id());
        }
        store.reclaim_retired();

        let a = store.run_epochs().begin();
        let b = store.run_epochs().begin();
        let ca = store.alloc_chunk_for_run(1, 0, a);
        let cb = store.alloc_chunk_for_run(2, 0, b);
        assert_eq!(ca.run_tag(), a);

        // A disposes while B is still mid-flight.
        store.retire_chunk(ca.id());
        store.run_epochs().end(a);
        assert_eq!(store.reclaim_watermark(), 1, "A's chunk passes its horizon");
        let s = store.stats();
        assert_eq!(s.epoch_reclaims, 1);
        assert_eq!(s.active_runs, 1, "B still active");

        // B's chunk retired mid-flight (as a collection would): its stamp is B's
        // epoch, and B is still active, so the watermark must hold it back.
        store.retire_chunk(cb.id());
        assert_eq!(store.reclaim_watermark(), 0, "B's horizon not reached");
        assert_eq!(store.stats().chunks_quarantined, 1);

        store.run_epochs().end(b);
        assert_eq!(store.reclaim_watermark(), 1);
        let s = store.stats();
        assert_eq!(s.chunks_quarantined, 0);
        assert_eq!(s.quarantined_words, 0);
        assert_eq!(s.active_runs_peak, 2);
    }

    /// An untagged retiree is stamped conservatively: it waits for every run alive
    /// at retirement, but not for runs that begin afterwards.
    #[test]
    fn untagged_retiree_waits_for_runs_alive_at_retirement() {
        let store = ChunkStore::new(128);
        let held = drain_cache(&store);
        let witness = held[0].id();
        let old = store.run_epochs().begin();
        store.retire_chunk(witness); // run_tag 0 → stamped with `old`'s epoch
        assert_eq!(store.reclaim_watermark(), 0, "old run still active");
        // A run that begins after the retirement does not hold it back.
        let young = store.run_epochs().begin();
        store.run_epochs().end(old);
        assert_eq!(store.reclaim_watermark(), 1);
        store.run_epochs().end(young);
    }

    /// Recycling never resurrects stale `ObjPtr`s: after a chunk is reused, pointers
    /// formed against its previous generation observe a bumped generation tag and a
    /// zeroed object area rather than the old objects.
    #[test]
    fn prop_recycling_never_resurrects_stale_objptrs() {
        let mut state = 0x5151_AB1E_D00D_F00Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _case in 0..32 {
            let store = ChunkStore::new(64);
            let chunk = StdArc::clone(&drain_cache(&store)[0]);
            chunk.set_owner(1);
            let gen0 = chunk.generation();
            // Populate with objects carrying recognizable payloads.
            let mut stale: Vec<ObjPtr> = Vec::new();
            loop {
                let fields = 1 + (next() % 6) as usize;
                let Some(p) = store.alloc_in_chunk(&chunk, Header::new(fields, 0, ObjKind::Tuple))
                else {
                    break;
                };
                for f in 0..fields {
                    store.view(p).set_field(f, 0xA5A5_0000 + f as u64);
                }
                stale.push(p);
            }
            assert!(!stale.is_empty());
            store.retire_chunk(chunk.id());
            store.reclaim_retired();
            let reused = store.alloc_chunk(2, 0);
            assert_eq!(reused.id(), chunk.id());
            // Old pointers are detectably stale: the generation moved on and the old
            // headers read as zero (an empty object), so no old payload is reachable.
            assert_eq!(chunk.generation(), gen0 + 1);
            for p in stale {
                let raw_header = chunk.word(p.offset() as usize).load(Ordering::Relaxed);
                assert_eq!(raw_header, 0, "stale header must be poisoned to zero");
            }
        }
    }
}
