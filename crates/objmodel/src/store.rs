//! The chunk store: the global table mapping chunk ids to chunks.
//!
//! This is the stand-in for MLton's address-masked chunk metadata: given an [`ObjPtr`],
//! `heapOf` needs the chunk's metadata in O(1). The store also carries the global memory
//! accounting used to reproduce the paper's Figure 13 (memory consumption and inflation):
//! total words currently held by live chunks and the peak ever reached.

use crate::appendvec::AppendVec;
use crate::chunk::{Chunk, ChunkId};
use crate::header::Header;
use crate::objptr::ObjPtr;
use crate::view::ObjView;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default chunk capacity in words (64 Ki words = 512 KiB).
pub const DEFAULT_CHUNK_WORDS: usize = 64 * 1024;

/// Snapshot of the store's memory accounting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Words currently held by non-retired chunks.
    pub live_words: usize,
    /// Highest value `live_words` has ever reached.
    pub peak_words: usize,
    /// Total words ever allocated in chunks (monotone).
    pub total_allocated_words: usize,
    /// Number of chunks ever created.
    pub chunks_created: usize,
    /// Number of chunks retired by collections.
    pub chunks_retired: usize,
}

/// The global chunk table plus memory accounting.
pub struct ChunkStore {
    chunks: AppendVec<Arc<Chunk>>,
    /// Serializes id assignment with table insertion so `chunk.id()` always equals the
    /// chunk's index. Chunk creation is rare (one per ~512 KiB of allocation), so this
    /// lock is never contended in practice.
    alloc_lock: parking_lot::Mutex<()>,
    default_chunk_words: usize,
    live_words: AtomicUsize,
    peak_words: AtomicUsize,
    total_words: AtomicUsize,
    chunks_retired: AtomicUsize,
}

impl ChunkStore {
    /// Creates a store whose freshly allocated chunks default to `default_chunk_words`
    /// words (larger objects get a dedicated chunk of exactly the needed size).
    pub fn new(default_chunk_words: usize) -> Self {
        assert!(
            default_chunk_words >= 16,
            "chunks must hold at least one small object"
        );
        ChunkStore {
            chunks: AppendVec::new(),
            alloc_lock: parking_lot::Mutex::new(()),
            default_chunk_words,
            live_words: AtomicUsize::new(0),
            peak_words: AtomicUsize::new(0),
            total_words: AtomicUsize::new(0),
            chunks_retired: AtomicUsize::new(0),
        }
    }

    /// Creates a store with the default chunk size.
    pub fn with_default_chunk_size() -> Self {
        Self::new(DEFAULT_CHUNK_WORDS)
    }

    /// The default chunk capacity in words.
    pub fn default_chunk_words(&self) -> usize {
        self.default_chunk_words
    }

    /// Allocates a new chunk owned by raw heap `owner`, large enough for at least
    /// `min_words` words.
    pub fn alloc_chunk(&self, owner: u32, min_words: usize) -> Arc<Chunk> {
        let n_words = min_words.max(self.default_chunk_words);
        let chunk = {
            let _guard = self.alloc_lock.lock();
            let id = ChunkId(self.chunks.len() as u32);
            let chunk = Arc::new(Chunk::new(id, owner, n_words));
            let idx = self.chunks.push(Arc::clone(&chunk));
            debug_assert_eq!(idx, id.0 as usize, "chunk id / index mismatch");
            chunk
        };
        self.account_new_chunk(n_words);
        chunk
    }

    fn account_new_chunk(&self, n_words: usize) {
        self.total_words.fetch_add(n_words, Ordering::Relaxed);
        let live = self.live_words.fetch_add(n_words, Ordering::Relaxed) + n_words;
        self.peak_words.fetch_max(live, Ordering::Relaxed);
    }

    /// Looks up a chunk by id.
    #[inline]
    pub fn chunk(&self, id: ChunkId) -> &Arc<Chunk> {
        self.chunks
            .get(id.0 as usize)
            .expect("dangling ChunkId: chunk not present in store")
    }

    /// Number of chunks ever created (including retired ones).
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Retires a chunk after its live contents were evacuated: memory accounting drops
    /// its words and the chunk is flagged so stale pointers can be detected in debug
    /// builds.
    pub fn retire_chunk(&self, id: ChunkId) {
        let chunk = self.chunk(id);
        if !chunk.is_retired() {
            chunk.retire();
            self.live_words
                .fetch_sub(chunk.capacity(), Ordering::Relaxed);
            self.chunks_retired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resolves an object pointer to a view of the object.
    ///
    /// Pointers into retired chunks remain dereferenceable: retirement is an accounting
    /// notion (the evacuated from-space no longer counts towards live memory), and stale
    /// pointers held outside the managed heap resolve to current data through the
    /// forwarding pointers the evacuation installed. See DESIGN.md (stack-map
    /// substitution) for why this is the faithful simulation choice.
    #[inline]
    pub fn view(&self, ptr: ObjPtr) -> ObjView<'_> {
        debug_assert!(!ptr.is_null(), "dereferencing NULL ObjPtr");
        let chunk = self.chunk(ptr.chunk());
        ObjView::new(chunk, ptr.offset())
    }

    /// Allocates an object with the given header inside `chunk`, returning its pointer,
    /// or `None` if the chunk is full.
    pub fn alloc_in_chunk(&self, chunk: &Chunk, header: Header) -> Option<ObjPtr> {
        let off = chunk.try_bump(header.size_words())?;
        let ptr = ObjPtr::new(chunk.id(), off);
        let view = ObjView::new(chunk, off);
        view.init(header);
        Some(ptr)
    }

    /// Raw heap id recorded on the chunk containing `ptr` (the heap the object was
    /// *allocated* into; the heap registry resolves merges on top of this).
    #[inline]
    pub fn chunk_owner(&self, ptr: ObjPtr) -> u32 {
        self.chunk(ptr.chunk()).owner()
    }

    /// Current memory accounting snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            live_words: self.live_words.load(Ordering::Relaxed),
            peak_words: self.peak_words.load(Ordering::Relaxed),
            total_allocated_words: self.total_words.load(Ordering::Relaxed),
            chunks_created: self.chunks.len(),
            chunks_retired: self.chunks_retired.load(Ordering::Relaxed),
        }
    }
}

impl Default for ChunkStore {
    fn default() -> Self {
        Self::with_default_chunk_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjKind;
    use std::sync::Arc as StdArc;

    #[test]
    fn alloc_chunk_and_lookup() {
        let store = ChunkStore::new(1024);
        let c = store.alloc_chunk(3, 0);
        assert_eq!(c.capacity(), 1024);
        assert_eq!(c.owner(), 3);
        let looked = store.chunk(c.id());
        assert_eq!(looked.id(), c.id());
    }

    #[test]
    fn big_object_gets_dedicated_chunk() {
        let store = ChunkStore::new(64);
        let c = store.alloc_chunk(0, 1_000);
        assert!(c.capacity() >= 1_000);
    }

    #[test]
    fn alloc_object_and_view() {
        let store = ChunkStore::new(1024);
        let c = store.alloc_chunk(0, 0);
        let h = Header::new(3, 1, ObjKind::Tuple);
        let p = store.alloc_in_chunk(&c, h).unwrap();
        let v = store.view(p);
        assert_eq!(v.n_fields(), 3);
        assert_eq!(v.n_ptr(), 1);
        v.set_field(2, 99);
        assert_eq!(store.view(p).field(2), 99);
    }

    #[test]
    fn alloc_until_full_returns_none() {
        let store = ChunkStore::new(16);
        let c = store.alloc_chunk(0, 0);
        let h = Header::new(2, 0, ObjKind::Tuple); // 4 words
        let mut count = 0;
        while store.alloc_in_chunk(&c, h).is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn memory_accounting_tracks_peak_and_retire() {
        let store = ChunkStore::new(100);
        let a = store.alloc_chunk(0, 0);
        let b = store.alloc_chunk(0, 0);
        let s = store.stats();
        assert_eq!(s.live_words, 200);
        assert_eq!(s.peak_words, 200);
        store.retire_chunk(a.id());
        let s = store.stats();
        assert_eq!(s.live_words, 100);
        assert_eq!(s.peak_words, 200);
        assert_eq!(s.chunks_retired, 1);
        // Retiring twice is idempotent.
        store.retire_chunk(a.id());
        assert_eq!(store.stats().live_words, 100);
        store.retire_chunk(b.id());
        assert_eq!(store.stats().live_words, 0);
        assert_eq!(store.stats().peak_words, 200);
    }

    #[test]
    fn chunk_owner_reflects_allocation_heap() {
        let store = ChunkStore::new(64);
        let c = store.alloc_chunk(42, 0);
        let p = store
            .alloc_in_chunk(&c, Header::new(1, 0, ObjKind::Ref))
            .unwrap();
        assert_eq!(store.chunk_owner(p), 42);
    }

    #[test]
    fn concurrent_chunk_allocation_ids_are_unique_and_resolvable() {
        let store = StdArc::new(ChunkStore::new(64));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let store = StdArc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..200 {
                    let c = store.alloc_chunk(t, 0);
                    ids.push(c.id());
                }
                ids
            }));
        }
        let mut all: Vec<ChunkId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // All returned chunks must be resolvable to a chunk with that id.
        for &id in &all {
            let c = store.chunk(id);
            assert_eq!(c.id(), id);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 200, "chunk ids must be unique");
    }
}
