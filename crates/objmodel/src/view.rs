//! Structured access to a single object.
//!
//! An [`ObjView`] pairs a chunk reference with the word offset of an object header and
//! exposes the low-level primitives of the paper's Figure 4: reading the header, testing
//! and following the forwarding pointer (`hasFwdPtr` / `fwdPtr`), and loading / storing /
//! CAS-ing individual fields (`getField`).
//!
//! ## Memory-ordering conventions
//!
//! * The **forwarding-pointer slot** is *installed* (NULL → copy) at most once per
//!   object, always by a thread holding the owning heap's WRITE lock (promotion) or
//!   during a collection of a quiescent subtree. It is published with `Release` and
//!   read with `Acquire`, so a reader that observes the forwarding pointer also
//!   observes the fully initialized copy it points to. Once installed, the slot is
//!   **monotone**: [`ObjView::compress_fwd`] may CAS it from one chain member to a
//!   *later* member of the same chain (path compression), so every value the slot
//!   ever holds leads to the same master copy.
//! * **Fields** are accessed with `Acquire` loads and `Release` stores. This is slightly
//!   stronger than necessary for non-pointer data but keeps the model simple and is free
//!   on x86; pointer fields genuinely need release/acquire so that a task reading a
//!   published pointer sees the pointee's initialized contents.

use crate::chunk::Chunk;
use crate::header::{Header, ObjKind};
use crate::objptr::ObjPtr;
use std::sync::atomic::Ordering;

/// Word offset of the header within an object.
pub const OFF_HEADER: usize = 0;
/// Word offset of the dedicated forwarding-pointer slot within an object.
pub const OFF_FWD: usize = 1;
/// Word offset of the first field within an object.
pub const OFF_FIELDS: usize = 2;

/// A view of one object inside a chunk.
#[derive(Copy, Clone)]
pub struct ObjView<'a> {
    chunk: &'a Chunk,
    base: usize,
}

impl<'a> ObjView<'a> {
    /// Creates a view of the object whose header is at word `offset` of `chunk`.
    #[inline]
    pub fn new(chunk: &'a Chunk, offset: u32) -> Self {
        ObjView {
            chunk,
            base: offset as usize,
        }
    }

    /// The chunk this object lives in.
    #[inline]
    pub fn chunk(&self) -> &'a Chunk {
        self.chunk
    }

    /// Word offset of the object header inside its chunk.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Writes the header word and clears the forwarding slot and all pointer fields.
    /// Called exactly once, by the allocating thread.
    ///
    /// Pointer fields must start out as [`ObjPtr::NULL`] (not the zero bit pattern of a
    /// freshly mapped chunk, which would alias chunk 0, offset 0) so that tracing an
    /// object whose fields have not been filled in yet never follows a bogus pointer.
    #[inline]
    pub fn init(&self, header: Header) {
        self.chunk
            .word(self.base + OFF_HEADER)
            .store(header.encode(), Ordering::Release);
        self.chunk
            .word(self.base + OFF_FWD)
            .store(ObjPtr::NULL.to_bits(), Ordering::Release);
        for i in 0..header.n_ptr() {
            self.chunk
                .word(self.base + OFF_FIELDS + i)
                .store(ObjPtr::NULL.to_bits(), Ordering::Release);
        }
    }

    /// Writes the header word and clears the forwarding slot, leaving the fields
    /// **uninitialized** (whatever the chunk held — zero bits on a fresh or recycled
    /// chunk, which is *not* [`ObjPtr::NULL`]).
    ///
    /// For evacuation-style copies only ([`crate::ChunkStore::alloc_in_chunk_for_copy`]):
    /// the caller must store every field before any other thread can reach the
    /// object. Promotion satisfies this by holding the target heap's WRITE lock
    /// until the copy is fully filled in; collections run on quiescent zones.
    #[inline]
    pub fn init_for_copy(&self, header: Header) {
        self.chunk
            .word(self.base + OFF_HEADER)
            .store(header.encode(), Ordering::Release);
        self.chunk
            .word(self.base + OFF_FWD)
            .store(ObjPtr::NULL.to_bits(), Ordering::Release);
    }

    /// Decodes the object's header.
    #[inline]
    pub fn header(&self) -> Header {
        Header::decode(
            self.chunk
                .word(self.base + OFF_HEADER)
                .load(Ordering::Acquire),
        )
    }

    /// Total number of fields.
    #[inline]
    pub fn n_fields(&self) -> usize {
        self.header().n_fields()
    }

    /// Number of pointer fields.
    #[inline]
    pub fn n_ptr(&self) -> usize {
        self.header().n_ptr()
    }

    /// The object's kind tag.
    #[inline]
    pub fn kind(&self) -> ObjKind {
        self.header().kind()
    }

    /// Object size in words (header + forwarding slot + fields).
    #[inline]
    pub fn size_words(&self) -> usize {
        self.header().size_words()
    }

    /// `hasFwdPtr`: true if a forwarding pointer has been installed.
    #[inline]
    pub fn has_fwd(&self) -> bool {
        !self.fwd().is_null()
    }

    /// `*fwdPtr(obj)`: the forwarding pointer, or NULL if none has been installed.
    #[inline]
    pub fn fwd(&self) -> ObjPtr {
        ObjPtr::from_bits(self.chunk.word(self.base + OFF_FWD).load(Ordering::Acquire))
    }

    /// Installs the forwarding pointer. The caller must hold whatever exclusion the
    /// higher layer requires (the heap WRITE lock during promotion, or subtree
    /// quiescence during collection).
    #[inline]
    pub fn set_fwd(&self, target: ObjPtr) {
        debug_assert!(!target.is_null(), "installing a NULL forwarding pointer");
        self.chunk
            .word(self.base + OFF_FWD)
            .store(target.to_bits(), Ordering::Release);
    }

    /// Atomically installs the forwarding pointer only if none is present yet.
    /// Returns `Ok(())` on success and the existing pointer on failure.
    pub fn try_set_fwd(&self, target: ObjPtr) -> Result<(), ObjPtr> {
        debug_assert!(!target.is_null());
        match self.chunk.word(self.base + OFF_FWD).compare_exchange(
            ObjPtr::NULL.to_bits(),
            target.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(existing) => Err(ObjPtr::from_bits(existing)),
        }
    }

    /// Rewrites the header so the object declares **no pointer fields** (same total
    /// size, kind [`ObjKind::Other`]), turning it into an opaque filler that heap
    /// walkers skip over without interpreting its words as pointers.
    ///
    /// Used by a parallel collection's evacuation race loser: the copy it allocated
    /// lost the forwarding CAS to another worker's copy, is unreachable, and must
    /// not present its (from-space-pointing) fields to later scans, invariant
    /// checks, or the disentanglement walker.
    #[inline]
    pub fn retag_as_filler(&self) {
        let header = self.header();
        let filler = Header::new(header.n_fields(), 0, ObjKind::Other);
        self.chunk
            .word(self.base + OFF_HEADER)
            .store(filler.encode(), Ordering::Release);
    }

    /// Path compression: atomically shortcuts the forwarding pointer from `old` to
    /// `new`, where `new` must be reachable from `old` by following forwarding
    /// pointers. Returns `true` if the shortcut was installed.
    ///
    /// Unlike [`ObjView::set_fwd`], this is safe to call without any heap lock: the
    /// slot is monotone along one forwarding chain (chains only grow at the shallow
    /// end and are never unlinked before the reuse horizon), so concurrent readers
    /// observe either the old hop or the shortcut — both lead to the same master.
    /// A failed CAS means another thread compressed (or extended) concurrently; the
    /// chain is still intact either way, so failure needs no retry.
    #[inline]
    pub fn compress_fwd(&self, old: ObjPtr, new: ObjPtr) -> bool {
        debug_assert!(!old.is_null() && !new.is_null());
        self.chunk
            .word(self.base + OFF_FWD)
            .compare_exchange(
                old.to_bits(),
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    #[inline]
    fn field_index(&self, i: usize) -> usize {
        debug_assert!(
            i < self.n_fields(),
            "field {i} out of bounds (object has {} fields)",
            self.n_fields()
        );
        self.base + OFF_FIELDS + i
    }

    /// `*getField(obj, field)` as a load.
    #[inline]
    pub fn field(&self, i: usize) -> u64 {
        self.chunk.word(self.field_index(i)).load(Ordering::Acquire)
    }

    /// `*getField(obj, field) <- val` as a store.
    #[inline]
    pub fn set_field(&self, i: usize, val: u64) {
        self.chunk
            .word(self.field_index(i))
            .store(val, Ordering::Release);
    }

    /// Atomic compare-and-swap on a field; returns the previous value on failure.
    #[inline]
    pub fn cas_field(&self, i: usize, expected: u64, new: u64) -> Result<u64, u64> {
        self.chunk.word(self.field_index(i)).compare_exchange(
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    /// Atomic fetch-add on a (non-pointer) field, returning the previous value.
    #[inline]
    pub fn fetch_add_field(&self, i: usize, delta: u64) -> u64 {
        self.chunk
            .word(self.field_index(i))
            .fetch_add(delta, Ordering::AcqRel)
    }

    /// Convenience: reads field `i` as an object pointer.
    #[inline]
    pub fn field_ptr(&self, i: usize) -> ObjPtr {
        debug_assert!(
            self.header().is_ptr_field(i),
            "field {i} is not a pointer field"
        );
        ObjPtr::from_bits(self.field(i))
    }

    /// Convenience: stores an object pointer into field `i`.
    #[inline]
    pub fn set_field_ptr(&self, i: usize, ptr: ObjPtr) {
        debug_assert!(
            self.header().is_ptr_field(i),
            "field {i} is not a pointer field"
        );
        self.set_field(i, ptr.to_bits());
    }

    /// Atomic compare-and-swap on a pointer field: installs `new` only if the
    /// field still holds `expected`. Returns whether the install happened.
    ///
    /// This is the scan-side write of mutator-concurrent collection (GC v3): a
    /// scanner rewriting a to-space field may race with a mutator pointer store,
    /// and the mutator must win — its stored value was already forwarded by the
    /// write barrier, so a lost CAS is simply skipped, never retried.
    #[inline]
    pub fn cas_field_ptr(&self, i: usize, expected: ObjPtr, new: ObjPtr) -> bool {
        debug_assert!(
            self.header().is_ptr_field(i),
            "field {i} is not a pointer field"
        );
        self.cas_field(i, expected.to_bits(), new.to_bits()).is_ok()
    }

    /// True if field `i` holds an object pointer (`ptrFields` membership).
    #[inline]
    pub fn is_ptr_field(&self, i: usize) -> bool {
        self.header().is_ptr_field(i)
    }
}

impl std::fmt::Debug for ObjView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjView")
            .field("chunk", &self.chunk.id())
            .field("base", &self.base)
            .field("header", &self.header())
            .field("fwd", &self.fwd())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkId;

    fn chunk_with_obj(n_fields: usize, n_ptr: usize, kind: ObjKind) -> (Chunk, u32) {
        let chunk = Chunk::new(ChunkId(0), 0, 1024);
        let header = Header::new(n_fields, n_ptr, kind);
        let off = chunk.try_bump(header.size_words()).unwrap();
        let view = ObjView::new(&chunk, off);
        view.init(header);
        (chunk, off)
    }

    #[test]
    fn init_and_read_header() {
        let (chunk, off) = chunk_with_obj(3, 1, ObjKind::Cons);
        let v = ObjView::new(&chunk, off);
        assert_eq!(v.n_fields(), 3);
        assert_eq!(v.n_ptr(), 1);
        assert_eq!(v.kind(), ObjKind::Cons);
        assert_eq!(v.size_words(), 5);
        assert!(!v.has_fwd());
        assert!(v.fwd().is_null());
    }

    #[test]
    fn field_store_load() {
        let (chunk, off) = chunk_with_obj(4, 0, ObjKind::ArrayData);
        let v = ObjView::new(&chunk, off);
        for i in 0..4 {
            v.set_field(i, (i as u64 + 1) * 100);
        }
        for i in 0..4 {
            assert_eq!(v.field(i), (i as u64 + 1) * 100);
        }
    }

    #[test]
    fn pointer_field_roundtrip() {
        let (chunk, off) = chunk_with_obj(2, 2, ObjKind::ArrayPtr);
        let v = ObjView::new(&chunk, off);
        let target = ObjPtr::new(ChunkId(9), 77);
        v.set_field_ptr(0, target);
        v.set_field_ptr(1, ObjPtr::NULL);
        assert_eq!(v.field_ptr(0), target);
        assert!(v.field_ptr(1).is_null());
        assert!(v.is_ptr_field(0) && v.is_ptr_field(1));
    }

    #[test]
    fn forwarding_install_once() {
        let (chunk, off) = chunk_with_obj(1, 0, ObjKind::Ref);
        let v = ObjView::new(&chunk, off);
        let a = ObjPtr::new(ChunkId(1), 0);
        let b = ObjPtr::new(ChunkId(2), 0);
        assert!(v.try_set_fwd(a).is_ok());
        assert!(v.has_fwd());
        assert_eq!(v.fwd(), a);
        assert_eq!(v.try_set_fwd(b), Err(a));
        assert_eq!(v.fwd(), a);
    }

    #[test]
    fn compress_fwd_shortcuts_but_never_regresses() {
        let (chunk, off) = chunk_with_obj(1, 0, ObjKind::Ref);
        let v = ObjView::new(&chunk, off);
        let hop = ObjPtr::new(ChunkId(1), 0);
        let master = ObjPtr::new(ChunkId(2), 0);
        v.set_fwd(hop);
        // Successful shortcut: hop → master.
        assert!(v.compress_fwd(hop, master));
        assert_eq!(v.fwd(), master);
        // A stale compression (expecting the old hop) fails and changes nothing.
        assert!(!v.compress_fwd(hop, ObjPtr::new(ChunkId(3), 0)));
        assert_eq!(v.fwd(), master);
    }

    #[test]
    fn cas_field_success_and_failure() {
        let (chunk, off) = chunk_with_obj(1, 0, ObjKind::Ref);
        let v = ObjView::new(&chunk, off);
        v.set_field(0, 5);
        assert_eq!(v.cas_field(0, 5, 10), Ok(5));
        assert_eq!(v.field(0), 10);
        assert_eq!(v.cas_field(0, 5, 20), Err(10));
        assert_eq!(v.field(0), 10);
    }

    #[test]
    fn fetch_add_field_accumulates() {
        let (chunk, off) = chunk_with_obj(1, 0, ObjKind::Ref);
        let v = ObjView::new(&chunk, off);
        for _ in 0..10 {
            v.fetch_add_field(0, 3);
        }
        assert_eq!(v.field(0), 30);
    }

    #[test]
    fn multiple_objects_in_one_chunk_do_not_alias() {
        let chunk = Chunk::new(ChunkId(0), 0, 256);
        let mut offsets = Vec::new();
        for k in 0..10usize {
            let header = Header::new(3, 0, ObjKind::Tuple);
            let off = chunk.try_bump(header.size_words()).unwrap();
            let v = ObjView::new(&chunk, off);
            v.init(header);
            for f in 0..3 {
                v.set_field(f, (k * 10 + f) as u64);
            }
            offsets.push(off);
        }
        for (k, &off) in offsets.iter().enumerate() {
            let v = ObjView::new(&chunk, off);
            for f in 0..3 {
                assert_eq!(v.field(f), (k * 10 + f) as u64);
            }
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_field_panics_in_debug() {
        let (chunk, off) = chunk_with_obj(2, 0, ObjKind::Tuple);
        let v = ObjView::new(&chunk, off);
        let _ = v.field(2);
    }
}
