//! Object headers.
//!
//! Every object starts with a one-word header describing its shape: how many fields it
//! has, how many of them hold object pointers, and a small *kind* tag used by the
//! higher-level libraries (sequences, graphs, …) for debugging and sanity checks.
//!
//! By convention the pointer fields are fields `0 .. n_ptr` and the non-pointer fields
//! are fields `n_ptr .. n_fields`. This mirrors the paper's `ptrFields` / `nonptrFields`
//! primitives while keeping the header to a single word.

/// The kind tag carried by every object header.
///
/// Kinds have no semantic meaning inside the memory manager; they exist so that the
/// higher layers (and the tests) can assert they are looking at the object they expect.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum ObjKind {
    /// A generic tuple / record of immutable fields.
    Tuple = 0,
    /// A mutable reference cell (`'a ref`): one field, mutable.
    Ref = 1,
    /// A mutable array of non-pointer data (ints, floats as bits).
    ArrayData = 2,
    /// A mutable array of object pointers.
    ArrayPtr = 3,
    /// An immutable cons cell / list node.
    Cons = 4,
    /// An immutable leaf vector used by sequence trees.
    Leaf = 5,
    /// A node of a user data structure (tournament tree, quadtree, …).
    Node = 6,
    /// Anything else.
    Other = 7,
}

impl ObjKind {
    /// Decodes a kind from its numeric tag, defaulting to [`ObjKind::Other`].
    pub fn from_u8(v: u8) -> ObjKind {
        match v {
            0 => ObjKind::Tuple,
            1 => ObjKind::Ref,
            2 => ObjKind::ArrayData,
            3 => ObjKind::ArrayPtr,
            4 => ObjKind::Cons,
            5 => ObjKind::Leaf,
            6 => ObjKind::Node,
            _ => ObjKind::Other,
        }
    }

    /// True for kinds whose fields may be mutated after initialization.
    ///
    /// `readMutable` / `writeNonptr` / `writePtr` are only meaningful on these kinds;
    /// the distinction matters because immutable fields never need master-copy lookups.
    pub fn is_mutable(self) -> bool {
        matches!(self, ObjKind::Ref | ObjKind::ArrayData | ObjKind::ArrayPtr)
    }
}

/// Maximum number of fields an object may have (2^32 - 1).
pub const MAX_FIELDS: u64 = u32::MAX as u64;
/// Maximum number of pointer fields an object may have (2^24 - 1).
pub const MAX_PTR_FIELDS: u64 = (1 << 24) - 1;

/// A decoded object header.
///
/// Layout of the encoded word: bits `0..32` = total field count, bits `32..56` = number
/// of pointer fields, bits `56..64` = kind tag.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Header {
    n_fields: u32,
    n_ptr: u32,
    kind: ObjKind,
}

impl Header {
    /// Creates a header for an object with `n_ptr` pointer fields followed by
    /// `n_fields - n_ptr` non-pointer fields.
    ///
    /// # Panics
    /// Panics if `n_ptr > n_fields` or if either count exceeds its encodable range.
    pub fn new(n_fields: usize, n_ptr: usize, kind: ObjKind) -> Header {
        assert!(n_ptr <= n_fields, "n_ptr ({n_ptr}) > n_fields ({n_fields})");
        assert!(
            (n_fields as u64) <= MAX_FIELDS,
            "too many fields: {n_fields}"
        );
        assert!(
            (n_ptr as u64) <= MAX_PTR_FIELDS,
            "too many pointer fields: {n_ptr}"
        );
        Header {
            n_fields: n_fields as u32,
            n_ptr: n_ptr as u32,
            kind,
        }
    }

    /// Total number of fields.
    #[inline]
    pub fn n_fields(self) -> usize {
        self.n_fields as usize
    }

    /// Number of pointer fields (fields `0 .. n_ptr`).
    #[inline]
    pub fn n_ptr(self) -> usize {
        self.n_ptr as usize
    }

    /// Number of non-pointer fields (fields `n_ptr .. n_fields`).
    #[inline]
    pub fn n_nonptr(self) -> usize {
        (self.n_fields - self.n_ptr) as usize
    }

    /// The kind tag.
    #[inline]
    pub fn kind(self) -> ObjKind {
        self.kind
    }

    /// Total object size in words, including the header and forwarding-pointer slots.
    #[inline]
    pub fn size_words(self) -> usize {
        crate::view::OFF_FIELDS + self.n_fields as usize
    }

    /// True if field `i` holds an object pointer.
    #[inline]
    pub fn is_ptr_field(self, i: usize) -> bool {
        i < self.n_ptr as usize
    }

    /// Encodes the header into its one-word representation.
    #[inline]
    pub fn encode(self) -> u64 {
        (self.n_fields as u64) | ((self.n_ptr as u64) << 32) | ((self.kind as u64) << 56)
    }

    /// Decodes a header from its one-word representation.
    #[inline]
    pub fn decode(bits: u64) -> Header {
        Header {
            n_fields: bits as u32,
            n_ptr: ((bits >> 32) & MAX_PTR_FIELDS) as u32,
            kind: ObjKind::from_u8((bits >> 56) as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let h = Header::new(3, 1, ObjKind::Cons);
        let h2 = Header::decode(h.encode());
        assert_eq!(h, h2);
        assert_eq!(h2.n_fields(), 3);
        assert_eq!(h2.n_ptr(), 1);
        assert_eq!(h2.n_nonptr(), 2);
        assert_eq!(h2.kind(), ObjKind::Cons);
        assert_eq!(h2.size_words(), 5);
    }

    #[test]
    fn ptr_field_classification() {
        let h = Header::new(4, 2, ObjKind::Tuple);
        assert!(h.is_ptr_field(0));
        assert!(h.is_ptr_field(1));
        assert!(!h.is_ptr_field(2));
        assert!(!h.is_ptr_field(3));
    }

    #[test]
    fn zero_field_object() {
        let h = Header::new(0, 0, ObjKind::Other);
        assert_eq!(h.n_fields(), 0);
        assert_eq!(h.size_words(), crate::view::OFF_FIELDS);
    }

    #[test]
    #[should_panic(expected = "n_ptr")]
    fn more_ptrs_than_fields_panics() {
        let _ = Header::new(1, 2, ObjKind::Tuple);
    }

    #[test]
    fn kind_mutability() {
        assert!(ObjKind::Ref.is_mutable());
        assert!(ObjKind::ArrayData.is_mutable());
        assert!(ObjKind::ArrayPtr.is_mutable());
        assert!(!ObjKind::Tuple.is_mutable());
        assert!(!ObjKind::Cons.is_mutable());
        assert!(!ObjKind::Leaf.is_mutable());
    }

    #[test]
    fn kind_from_u8_total() {
        for v in 0..=255u8 {
            let k = ObjKind::from_u8(v);
            if v < 8 {
                assert_eq!(k as u8, v);
            } else {
                assert_eq!(k, ObjKind::Other);
            }
        }
    }

    // Randomized (deterministic-seed) property checks; the build has no network
    // access, so these use the workspace's own generator instead of proptest.
    #[test]
    fn prop_header_roundtrip() {
        let mut h64 = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            h64 = h64
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h64
        };
        for _ in 0..256 {
            let n_fields = (next() % 100_000) as usize;
            let ptr_frac = next() % 101;
            let kind = (next() % 8) as u8;
            let n_ptr = ((n_fields as u64 * ptr_frac / 100) as usize).min(MAX_PTR_FIELDS as usize);
            let h = Header::new(n_fields, n_ptr, ObjKind::from_u8(kind));
            let h2 = Header::decode(h.encode());
            assert_eq!(h, h2);
            assert_eq!(h2.n_fields(), n_fields);
            assert_eq!(h2.n_ptr(), n_ptr);
        }
    }

    #[test]
    fn prop_field_partition() {
        let mut h64 = 0x853C_49E6_748F_EA9Bu64;
        let mut next = move || {
            h64 = h64
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h64
        };
        for _ in 0..256 {
            let n_fields = (next() % 1000) as usize;
            let n_ptr = ((next() % 1000) as usize).min(n_fields);
            let h = Header::new(n_fields, n_ptr, ObjKind::Tuple);
            let ptr_count = (0..n_fields).filter(|&i| h.is_ptr_field(i)).count();
            assert_eq!(ptr_count, n_ptr);
        }
    }
}
