//! Packed object pointers.
//!
//! An [`ObjPtr`] identifies an allocated object by the chunk it lives in and the word
//! offset of its header within that chunk. It plays the role of the paper's `objptr`
//! type: a value that can be stored in an object's pointer field, compared, and resolved
//! back to memory through the [`ChunkStore`](crate::store::ChunkStore).

use crate::chunk::ChunkId;
use std::fmt;

/// A packed pointer to an allocated object: `(chunk id, word offset of the header)`.
///
/// The all-ones bit pattern is reserved for [`ObjPtr::NULL`], which is used both for
/// "no forwarding pointer" and for nil pointer fields (e.g. the tail of a list).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjPtr(u64);

impl ObjPtr {
    /// The null object pointer. Dereferencing it is a logic error caught by debug asserts.
    pub const NULL: ObjPtr = ObjPtr(u64::MAX);

    /// Builds an object pointer from a chunk id and a word offset within that chunk.
    #[inline]
    pub fn new(chunk: ChunkId, offset: u32) -> Self {
        let bits = ((chunk.0 as u64) << 32) | offset as u64;
        debug_assert_ne!(bits, u64::MAX, "ObjPtr::new collided with NULL");
        ObjPtr(bits)
    }

    /// True if this is [`ObjPtr::NULL`].
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == u64::MAX
    }

    /// The chunk this object lives in. Must not be called on NULL.
    #[inline]
    pub fn chunk(self) -> ChunkId {
        debug_assert!(!self.is_null(), "chunk() on null ObjPtr");
        ChunkId((self.0 >> 32) as u32)
    }

    /// Word offset of the object header inside its chunk. Must not be called on NULL.
    #[inline]
    pub fn offset(self) -> u32 {
        debug_assert!(!self.is_null(), "offset() on null ObjPtr");
        self.0 as u32
    }

    /// Raw bit representation, suitable for storing into an object word.
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a pointer from its raw bit representation.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        ObjPtr(bits)
    }
}

impl Default for ObjPtr {
    fn default() -> Self {
        ObjPtr::NULL
    }
}

impl fmt::Debug for ObjPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "ObjPtr(NULL)")
        } else {
            write!(f, "ObjPtr(c{}+{})", self.chunk().0, self.offset())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        assert!(ObjPtr::NULL.is_null());
        assert_eq!(ObjPtr::from_bits(ObjPtr::NULL.to_bits()), ObjPtr::NULL);
        assert_eq!(ObjPtr::default(), ObjPtr::NULL);
    }

    #[test]
    fn pack_unpack() {
        let p = ObjPtr::new(ChunkId(7), 1234);
        assert!(!p.is_null());
        assert_eq!(p.chunk(), ChunkId(7));
        assert_eq!(p.offset(), 1234);
        assert_eq!(ObjPtr::from_bits(p.to_bits()), p);
    }

    #[test]
    fn extreme_values_do_not_collide_with_null() {
        let p = ObjPtr::new(ChunkId(u32::MAX - 1), u32::MAX);
        assert!(!p.is_null());
        let q = ObjPtr::new(ChunkId(0), 0);
        assert!(!q.is_null());
        assert_ne!(p, q);
    }

    #[test]
    fn ordering_is_total() {
        let a = ObjPtr::new(ChunkId(1), 10);
        let b = ObjPtr::new(ChunkId(1), 20);
        let c = ObjPtr::new(ChunkId(2), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn debug_format() {
        let p = ObjPtr::new(ChunkId(3), 42);
        assert_eq!(format!("{:?}", p), "ObjPtr(c3+42)");
        assert_eq!(format!("{:?}", ObjPtr::NULL), "ObjPtr(NULL)");
    }
}
