//! # hierheap — hierarchical memory management for mutable state
//!
//! A Rust reproduction of Guatto, Westrick, Raghunathan, Acar and Fluet,
//! *Hierarchical Memory Management for Mutable State* (PPoPP 2018).
//!
//! This crate is a thin facade re-exporting the workspace's building blocks:
//!
//! * [`HhRuntime`] / [`HhConfig`] — the hierarchical-heap runtime with promotion
//!   (the paper's contribution, crate `hh-runtime`);
//! * [`SeqRuntime`], [`StwRuntime`], [`DlgRuntime`] — the comparison runtimes
//!   (crate `hh-baselines`);
//! * [`ParCtx`] / [`Runtime`] — the backend-generic operation interface
//!   (crate `hh-api`);
//! * [`workloads`] — the paper's 17-benchmark suite and its substrates;
//! * [`harness`] — the experiment driver regenerating the paper's tables and figures.
//!
//! ## Quickstart
//!
//! ```
//! use hierheap::{HhRuntime, ParCtx, Runtime, ObjPtr};
//!
//! let rt = HhRuntime::with_workers(2);
//! let value = rt.run(|ctx| {
//!     // A mutable ref allocated by the parent task…
//!     let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
//!     ctx.join(
//!         // …one child writes a locally allocated object into it (this promotes)…
//!         |c| {
//!             let local = c.alloc_ref_data(41);
//!             c.write_ptr(shared, 0, local);
//!         },
//!         |_| (),
//!     );
//!     // …and the parent reads it back through the master copy.
//!     let p = ctx.read_mut_ptr(shared, 0);
//!     ctx.read_mut(p, 0) + 1
//! });
//! assert_eq!(value, 42);
//! ```

pub use hh_api::{f64_from_bits, f64_to_bits, hash64, ObjKind, ObjPtr, ParCtx, Rooted, RunStats, Runtime};
pub use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
pub use hh_runtime::{HhConfig, HhRuntime};

/// The benchmark suite and its substrates (sequences, graphs, matrices, raytracer).
pub mod workloads {
    pub use hh_workloads::*;
}

/// The experiment driver (tables/figures of the paper's evaluation).
pub mod harness {
    pub use hh_harness::*;
}

/// Low-level building blocks, exposed for advanced use and for the tests.
pub mod lowlevel {
    pub use hh_heaps::{Heap, HeapId, HeapRegistry, HeapRwLock};
    pub use hh_objmodel::{AppendVec, Chunk, ChunkId, ChunkStore, Header, ObjView};
    pub use hh_sched::{Pool, Safepoints, Worker};
}
