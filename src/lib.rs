//! # hierheap — hierarchical memory management for mutable state
//!
//! A Rust reproduction of Guatto, Westrick, Raghunathan, Acar and Fluet,
//! *Hierarchical Memory Management for Mutable State* (PPoPP 2018).
//!
//! This crate is a thin facade re-exporting the workspace's building blocks:
//!
//! * [`HhRuntime`] / [`HhConfig`] — the hierarchical-heap runtime with promotion
//!   (the paper's contribution, crate `hh-runtime`);
//! * [`SeqRuntime`], [`StwRuntime`], [`DlgRuntime`] — the comparison runtimes
//!   (crate `hh-baselines`);
//! * [`ParCtx`] / [`Runtime`] — the backend-generic operation interface, **v2**: the
//!   paper's six scalar operations plus bulk field operations (`read_imm_bulk`,
//!   `read_mut_bulk`, `write_nonptr_bulk`, `fill_nonptr`, `copy_nonptr`) and n-ary
//!   fork-join (`join_many`, `par_for`) — crate `hh-api`;
//! * [`workloads`] — the paper's 17-benchmark suite and its substrates;
//! * [`harness`] — the experiment driver regenerating the paper's tables and figures.
//!
//! Scheduling uses the v2 work-first scheduler (crate `hh-sched`): lock-free
//! Chase–Lev deques, stack-resident fork jobs (an unstolen `join` allocates
//! nothing), parking-based wakeups, and **lazy steal-time child heaps** — a fork
//! creates heaps only when its right branch is actually stolen, which is what makes
//! the common sequential case near-free (see the `heaps_elided` statistic in
//! [`RunStats`] and the `join_overhead` bench).
//!
//! Memory management uses the v2 chunk lifecycle (crates `hh-objmodel` /
//! `hh-runtime`): chunks retired by collections flow back to the allocator through
//! size-classed lock-free free lists and per-thread allocation caches, collections
//! can evacuate a whole heap-hierarchy *subtree* (an internal node plus its
//! completed descendants) in one promotion-aware pass, and steady-state churn runs
//! with a bounded footprint (see the `chunks_recycled` / `subtree_collections`
//! statistics and the `chunk_churn` bench). The design — object model, stack-map
//! substitution, scheduler protocols, GC ownership rule, memory lifecycle,
//! ablations — is documented in
//! [`DESIGN.md`](https://github.com/paper-repo-growth/hierheap/blob/main/DESIGN.md)
//! at the repository root.
//!
//! ## Quickstart
//!
//! Parallel loops go through `par_for`, which hands each leaf task a disjoint index
//! range; array traffic goes through the bulk operations, which resolve the
//! promotion/forwarding check once per slice instead of once per word:
//!
//! ```
//! use hierheap::{HhRuntime, ParCtx, Runtime};
//!
//! let rt = HhRuntime::with_workers(2);
//! let sum = rt.run(|ctx| {
//!     let n = 10_000;
//!     let arr = ctx.alloc_data_array(n);
//!     // Parallel fill: each leaf computes its slice into a buffer and publishes it
//!     // with one bulk write.
//!     ctx.par_for(0..n, 1024, move |c, r| {
//!         let lo = r.start;
//!         let buf: Vec<u64> = r.map(|i| (i as u64) * 3).collect();
//!         c.write_nonptr_bulk(arr, lo, &buf);
//!     });
//!     // N-ary fork-join: one task per block, each bulk-reading its slice.
//!     let blocks: Vec<_> = (0..10)
//!         .map(|b| {
//!             move |c: &hierheap::HhCtx| {
//!                 let mut buf = vec![0u64; n / 10];
//!                 c.read_mut_bulk(arr, b * (n / 10), &mut buf);
//!                 buf.into_iter().sum::<u64>()
//!             }
//!         })
//!         .collect();
//!     ctx.join_many(blocks).into_iter().sum::<u64>()
//! });
//! assert_eq!(sum, (0..10_000u64).map(|i| i * 3).sum());
//! ```
//!
//! Mutation, promotion, and the master-copy protocol work exactly as in v1:
//!
//! ```
//! use hierheap::{HhRuntime, ParCtx, Runtime, ObjPtr};
//!
//! let rt = HhRuntime::with_workers(2);
//! let value = rt.run(|ctx| {
//!     // A mutable ref allocated by the parent task…
//!     let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
//!     ctx.join(
//!         // …one child writes a locally allocated object into it (this promotes)…
//!         |c| {
//!             let local = c.alloc_ref_data(41);
//!             c.write_ptr(shared, 0, local);
//!         },
//!         |_| (),
//!     );
//!     // …and the parent reads it back through the master copy.
//!     let p = ctx.read_mut_ptr(shared, 0);
//!     ctx.read_mut(p, 0) + 1
//! });
//! assert_eq!(value, 42);
//! ```

pub use hh_api::{
    f64_from_bits, f64_to_bits, hash64, ObjKind, ObjPtr, ParCtx, Rng, Rooted, RunStats, Runtime,
};
pub use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
pub use hh_runtime::{HhConfig, HhCtx, HhRuntime};

/// The benchmark suite and its substrates (sequences, graphs, matrices, raytracer).
pub mod workloads {
    pub use hh_workloads::*;
}

/// The experiment driver (tables/figures of the paper's evaluation).
pub mod harness {
    pub use hh_harness::*;
}

/// Low-level building blocks, exposed for advanced use and for the tests.
pub mod lowlevel {
    pub use hh_heaps::{Heap, HeapId, HeapRegistry, HeapRwLock};
    pub use hh_objmodel::{AppendVec, Chunk, ChunkId, ChunkStore, Header, ObjView, StoreStats};
    pub use hh_sched::{Pool, Safepoints, Worker};
}
