//! Stress and failure-injection style integration tests: high fork fan-out, deep
//! nesting, contended promotion targets, panics crossing task boundaries, and repeated
//! collections — the situations where a runtime bug would show up as entanglement, a
//! lost update, or a hang.

use hierheap::{HhConfig, HhRuntime, ObjKind, ObjPtr, ParCtx, Runtime};

fn small_runtime(workers: usize) -> HhRuntime {
    HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 512,
        gc_threshold_words: 20_000,
        ..Default::default()
    })
}

/// Many tasks repeatedly write freshly allocated objects into a single root-allocated
/// cell: the maximally contended promotion scenario (every write promotes to the root,
/// as in `usp-tree`). The final value must be one of the written records, fully intact.
#[test]
fn contended_promotions_to_a_single_root_cell() {
    // Eager per-fork heaps so every leaf allocates in its own heap and each publish
    // into the root cell promotes deterministically (under the default lazy policy,
    // leaves of unstolen subtrees run in the root heap and need no promotion).
    let rt = HhRuntime::new(HhConfig {
        n_workers: 4,
        chunk_words: 512,
        gc_threshold_words: 20_000,
        lazy_child_heaps: false,
        ..Default::default()
    });
    let (value, tag) = rt.run(|ctx| {
        let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
        fn hammer<C: ParCtx>(c: &C, cell: ObjPtr, lo: u64, hi: u64) {
            if hi - lo == 1 {
                for round in 0..20u64 {
                    let rec = c.alloc(0, 2, ObjKind::ArrayData);
                    c.write_nonptr(rec, 0, lo);
                    c.write_nonptr(rec, 1, lo ^ round);
                    c.write_ptr(cell, 0, rec);
                    c.maybe_collect();
                }
            } else {
                let mid = lo + (hi - lo) / 2;
                c.join(|c| hammer(c, cell, lo, mid), |c| hammer(c, cell, mid, hi));
            }
        }
        hammer(ctx, cell, 0, 32);
        let p = ctx.read_mut_ptr(cell, 0);
        (ctx.read_mut(p, 0), ctx.read_mut(p, 1))
    });
    assert!(value < 32, "winner id out of range: {value}");
    // The record's two fields were written by the same task iteration (field0 = id,
    // field1 = id ^ round with round < 20), so they must be consistent: a torn record
    // would make the recovered round out of range.
    assert!(tag ^ value < 20, "torn record: round {}", tag ^ value);
    assert_eq!(rt.check_disentangled(), 0);
    assert!(rt.stats().promoted_objects > 0);
}

/// Deep nesting: a fork chain hundreds of levels deep, each level touching an object of
/// the level above (distant reads/writes across many depths).
#[test]
fn deep_nesting_with_distant_access() {
    let rt = small_runtime(2);
    let total = rt.run(|ctx| {
        fn descend<C: ParCtx>(c: &C, acc_cell: ObjPtr, depth: u64) -> u64 {
            // Distant non-pointer write into an ancestor-allocated counter.
            let old = c.read_mut(acc_cell, 0);
            c.write_nonptr(acc_cell, 0, old + 1);
            if depth == 0 {
                c.read_mut(acc_cell, 0)
            } else {
                let (a, _) = c.join(|c| descend(c, acc_cell, depth - 1), |_| ());
                a
            }
        }
        let counter = ctx.alloc_ref_data(0);
        descend(ctx, counter, 300)
    });
    assert_eq!(total, 301);
    assert_eq!(rt.check_disentangled(), 0);
}

/// Wide fan-out: thousands of sibling tasks each allocating and publishing results,
/// exercising heap creation/join bookkeeping at scale.
#[test]
fn wide_fanout_allocates_and_joins_many_heaps() {
    let rt = small_runtime(4);
    let sum = rt.run(|ctx| {
        fn spread<C: ParCtx>(c: &C, lo: u64, hi: u64) -> u64 {
            if hi - lo == 1 {
                let obj = c.alloc_ref_data(hh_api_hash(lo));
                c.read_mut(obj, 0)
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = c.join(|c| spread(c, lo, mid), |c| spread(c, mid, hi));
                a.wrapping_add(b)
            }
        }
        spread(ctx, 0, 2048)
    });
    let expected = (0..2048u64).map(hh_api_hash).fold(0u64, u64::wrapping_add);
    assert_eq!(sum, expected);
    // Lazy steal-time heaps: each of the 2047 forks accounts for exactly two heap
    // slots, split between real creations (stolen) and elisions (unstolen).
    assert_eq!(
        rt.heaps_created() - 1 + rt.heaps_elided(),
        2 * 2047,
        "two heap slots per fork expected"
    );
    assert!(
        rt.heaps_elided() > 0,
        "a fan-out this wide must have unstolen forks"
    );
    assert_eq!(rt.check_disentangled(), 0);
}

fn hh_api_hash(x: u64) -> u64 {
    hierheap::hash64(x)
}

/// A panic in a deeply nested task propagates to the caller of `run` without poisoning
/// the runtime: subsequent runs still work and stay disentangled.
#[test]
fn panics_propagate_and_runtime_survives() {
    let rt = small_runtime(3);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|ctx| {
            ctx.join(
                |c| c.join(|_| panic!("injected failure"), |_| ()),
                |c| c.alloc_ref_data(1),
            )
        })
    }));
    assert!(result.is_err(), "the injected panic must reach the caller");

    // The runtime remains usable afterwards.
    let v = rt.run(|ctx| {
        let r = ctx.alloc_ref_data(5);
        ctx.read_mut(r, 0)
    });
    assert_eq!(v, 5);
    assert_eq!(rt.check_disentangled(), 0);
}

/// Seed-driven wavefront stress lane: 64 hash-derived irregular-wavefront
/// instances (grid shape, seed count, and grain all vary per seed), each run on
/// the hierarchical runtime in both the monolithic A6 shape and the
/// mutator-concurrent incremental shape, under tiny chunks and thresholds with
/// the invariant checker on, and checked against the independent sequential
/// reconstruction oracle. `HH_STRESS_SEED=<n>` replays one seed;
/// `HH_STRESS_SEEDS` overrides the count; `HH_WORKERS` sizes the pools.
#[test]
fn stress_wavefront_forced() {
    use hh_workloads::wavefront::{wavefront, wavefront_reference};

    let run_one = |seed: u64| {
        let replay = format!(
            "seed {seed} (replay: HH_STRESS_SEED={seed} cargo test --test stress stress_wavefront)"
        );
        let width = 12 + (hierheap::hash64(seed ^ 0x11) % 30) as usize;
        let height = 12 + (hierheap::hash64(seed ^ 0x22) % 30) as usize;
        let seeds = 1 + (hierheap::hash64(seed ^ 0x33) % 12) as usize;
        let grain = 4 + (hierheap::hash64(seed ^ 0x44) % 12) as usize;
        let expected = wavefront_reference(width, height, seeds, seed);
        let workers = hh_api::env_workers(4).max(2);
        for incremental_gc in [false, true] {
            // Eager heaps so every tile publish promotes regardless of steal luck.
            let rt = HhRuntime::new(HhConfig {
                n_workers: workers,
                chunk_words: 256,
                gc_threshold_words: 2 * 1024,
                check_invariants: true,
                lazy_child_heaps: false,
                incremental_gc,
                ..Default::default()
            });
            let shape = if incremental_gc { "incremental" } else { "A6" };
            assert_eq!(
                rt.run(|c| wavefront(c, width, height, seeds, grain, seed)),
                expected,
                "wavefront ({shape}) diverged from the reference on {replay}"
            );
            assert_eq!(
                rt.check_disentangled(),
                0,
                "wavefront ({shape}) left entanglement on {replay}"
            );
        }
    };

    if let Ok(one) = std::env::var("HH_STRESS_SEED") {
        run_one(one.parse().expect("HH_STRESS_SEED must be an integer"));
        return;
    }
    let count: u64 = std::env::var("HH_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for seed in 0..count {
        run_one(seed);
    }
}

/// Repeated forced collections interleaved with mutation keep pinned data intact and
/// keep memory accounting monotone in the right direction.
#[test]
fn repeated_collections_keep_pinned_data_and_account_memory() {
    let rt = small_runtime(1);
    rt.run(|ctx| {
        let keep = ctx.alloc_data_array(64);
        for i in 0..64 {
            ctx.write_nonptr(keep, i, (i as u64) * 3);
        }
        ctx.pin(keep);
        for round in 0..20 {
            for _ in 0..50 {
                let _garbage = ctx.alloc_data_array(128);
            }
            ctx.force_collect();
            for i in 0..64 {
                assert_eq!(
                    ctx.read_mut(keep, i),
                    (i as u64) * 3,
                    "round {round}, slot {i}"
                );
            }
        }
        ctx.unpin(keep);
    });
    let stats = rt.stats();
    assert_eq!(stats.gc_count, 20);
    assert!(
        stats.gc_copied_words >= 20 * 66,
        "survivor copied each round"
    );
}
