//! Cross-crate integration tests: the benchmark suite run end-to-end on all four
//! runtimes through the public facade, checking agreement, disentanglement, and the
//! headline qualitative results of the paper.

use hierheap::workloads::suite::{run_timed, BenchId, Params};
use hierheap::{DlgRuntime, HhConfig, HhRuntime, Runtime, SeqRuntime, StwRuntime};

fn tiny() -> Params {
    Params {
        scale: 0.0002,
        grain: 512,
    }
}

/// The core agreement property: every deterministic benchmark computes the same result
/// checksum on every runtime.
#[test]
fn all_runtimes_agree_on_deterministic_benchmarks() {
    let p = tiny();
    let deterministic: Vec<BenchId> = BenchId::ALL
        .into_iter()
        .filter(|b| *b != BenchId::Reachability) // benign race ⇒ nondeterministic count
        .collect();
    for id in deterministic {
        let seq = SeqRuntime::new();
        let expected = seq.run(|ctx| run_timed(ctx, id, p)).checksum;

        let stw = StwRuntime::with_workers(3);
        assert_eq!(
            stw.run(|ctx| run_timed(ctx, id, p)).checksum,
            expected,
            "{} on stw",
            id.name()
        );

        let hh = HhRuntime::with_workers(3);
        assert_eq!(
            hh.run(|ctx| run_timed(ctx, id, p)).checksum,
            expected,
            "{} on parmem",
            id.name()
        );
        assert_eq!(hh.check_disentangled(), 0, "{} entangled", id.name());

        // The DLG baseline cannot express the imperative benchmarks in the paper; here
        // it can run them (same API), but to mirror the evaluation we only require
        // agreement on the pure ones.
        if id.is_pure() {
            let dlg = DlgRuntime::with_workers(3);
            assert_eq!(
                dlg.run(|ctx| run_timed(ctx, id, p)).checksum,
                expected,
                "{} on dlg",
                id.name()
            );
        }
    }
}

/// §4.4: the pure `map` benchmark promotes nothing on the hierarchical runtime, while
/// the Manticore-style baseline promotes the data of stolen tasks.
#[test]
fn promotion_volume_shape_matches_the_paper() {
    let p = Params {
        scale: 0.001,
        grain: 256,
    };
    let hh = HhRuntime::with_workers(4);
    hh.run(|ctx| run_timed(ctx, BenchId::Map, p));
    assert_eq!(hh.stats().promoted_objects, 0, "parmem must not promote on map");

    // The DLG baseline's promotion comes from data built by stolen tasks. With a
    // flat-array sequence representation `map` builds nothing in its leaves, so the
    // effect shows on `msort-pure`, whose leaves allocate their partitions locally (see
    // EXPERIMENTS.md, E6). Run it a few times and require that at least one run with
    // several workers promotes something (steals are scheduling-dependent).
    let mut dlg_promoted = 0;
    for _ in 0..5 {
        let dlg = DlgRuntime::with_workers(4);
        dlg.run(|ctx| run_timed(ctx, BenchId::MsortPure, p));
        dlg_promoted += dlg.stats().promoted_words;
        if dlg_promoted > 0 {
            break;
        }
    }
    assert!(
        dlg_promoted > 0,
        "the DLG baseline should promote data built by stolen tasks on msort-pure"
    );
}

/// The imperative BFS variants exercise exactly the promotion machinery Figure 9
/// predicts: `usp` does not promote, `usp-tree` does.
#[test]
fn bfs_promotion_matches_figure9() {
    let p = Params {
        scale: 0.001,
        grain: 256,
    };
    let hh = HhRuntime::with_workers(4);
    hh.run(|ctx| run_timed(ctx, BenchId::Usp, p));
    assert_eq!(hh.stats().promoted_objects, 0, "usp must not promote");

    let hh2 = HhRuntime::with_workers(4);
    hh2.run(|ctx| run_timed(ctx, BenchId::UspTree, p));
    assert!(
        hh2.stats().promoted_objects > 0,
        "usp-tree must perform promoting writes with multiple workers"
    );
    assert_eq!(hh2.check_disentangled(), 0);
}

/// Garbage collection triggers under allocation pressure on every runtime that
/// implements it, without corrupting results.
#[test]
fn collections_happen_under_pressure_and_results_survive() {
    let p = Params {
        scale: 0.001,
        grain: 512,
    };
    // Small GC thresholds force collections during msort-pure (allocation heavy).
    let hh = HhRuntime::new(HhConfig {
        n_workers: 3,
        chunk_words: 1024,
        gc_threshold_words: 8_000,
        ..Default::default()
    });
    let seq = SeqRuntime::new();
    let expected = seq.run(|ctx| run_timed(ctx, BenchId::MsortPure, p)).checksum;
    let got = hh.run(|ctx| run_timed(ctx, BenchId::MsortPure, p)).checksum;
    assert_eq!(expected, got);
    assert!(
        hh.stats().gc_count > 0,
        "msort-pure with a small threshold must collect leaf heaps"
    );
}

/// The facade's quickstart doc example, kept in sync as a real test.
#[test]
fn facade_quickstart_compiles_and_runs() {
    use hierheap::{ObjPtr, ParCtx};
    let rt = HhRuntime::with_workers(2);
    let value = rt.run(|ctx| {
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        ctx.join(
            |c| {
                let local = c.alloc_ref_data(41);
                c.write_ptr(shared, 0, local);
            },
            |_| (),
        );
        let p = ctx.read_mut_ptr(shared, 0);
        ctx.read_mut(p, 0) + 1
    });
    assert_eq!(value, 42);
}
