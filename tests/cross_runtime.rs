//! Cross-crate integration tests: the benchmark suite run end-to-end on all four
//! runtimes through the public facade, checking agreement, disentanglement, and the
//! headline qualitative results of the paper.

use hierheap::workloads::suite::{run_timed, BenchId, Params};
use hierheap::{
    hash64, DlgRuntime, HhConfig, HhRuntime, ObjPtr, ParCtx, Rng, Runtime, SeqRuntime, StwRuntime,
};

fn tiny() -> Params {
    Params {
        scale: 0.0002,
        grain: 512,
    }
}

/// The core agreement property: every deterministic benchmark computes the same result
/// checksum on every runtime.
#[test]
fn all_runtimes_agree_on_deterministic_benchmarks() {
    let p = tiny();
    let deterministic: Vec<BenchId> = BenchId::ALL
        .into_iter()
        .filter(|b| *b != BenchId::Reachability) // benign race ⇒ nondeterministic count
        .collect();
    for id in deterministic {
        let seq = SeqRuntime::new();
        let expected = seq.run(|ctx| run_timed(ctx, id, p)).checksum;

        let stw = StwRuntime::with_workers(3);
        assert_eq!(
            stw.run(|ctx| run_timed(ctx, id, p)).checksum,
            expected,
            "{} on stw",
            id.name()
        );

        let hh = HhRuntime::with_workers(3);
        assert_eq!(
            hh.run(|ctx| run_timed(ctx, id, p)).checksum,
            expected,
            "{} on parmem",
            id.name()
        );
        assert_eq!(hh.check_disentangled(), 0, "{} entangled", id.name());

        // The DLG baseline cannot express the imperative benchmarks in the paper; here
        // it can run them (same API), but to mirror the evaluation we only require
        // agreement on the pure ones.
        if id.is_pure() {
            let dlg = DlgRuntime::with_workers(3);
            assert_eq!(
                dlg.run(|ctx| run_timed(ctx, id, p)).checksum,
                expected,
                "{} on dlg",
                id.name()
            );
        }
    }
}

/// The adversarial workloads (`wavefront`, `entangle`) agree across all four
/// runtimes *and* across the hierarchical runtime's ablation matrix — A3
/// (per-object promotion), A4 (serial GC), A6 (monolithic collections, the
/// default shape), and incremental collection — under GC-pressure thresholds
/// with the invariant checker on, leaving no entanglement after any run.
#[test]
fn adversarial_workloads_agree_across_runtimes_and_ablations() {
    let p = tiny();
    for id in BenchId::ADVERSARIAL {
        let expected = SeqRuntime::new().run(|ctx| run_timed(ctx, id, p)).checksum;
        assert_eq!(
            StwRuntime::with_workers(3)
                .run(|ctx| run_timed(ctx, id, p))
                .checksum,
            expected,
            "{} on stw",
            id.name()
        );
        assert_eq!(
            DlgRuntime::with_workers(3)
                .run(|ctx| run_timed(ctx, id, p))
                .checksum,
            expected,
            "{} on dlg",
            id.name()
        );
        let base = HhConfig {
            n_workers: 3,
            chunk_words: 256,
            gc_threshold_words: 4 * 1024,
            check_invariants: true,
            ..HhConfig::default()
        };
        let shapes: [(&str, HhConfig); 4] = [
            (
                "A3 (per-object promotion)",
                HhConfig {
                    batched_promotion: false,
                    ..base.clone()
                },
            ),
            (
                "A4 (serial GC)",
                HhConfig {
                    gc_workers: 1,
                    ..base.clone()
                },
            ),
            ("A6 (monolithic GC)", base.clone()),
            (
                "incremental GC",
                HhConfig {
                    incremental_gc: true,
                    ..base.clone()
                },
            ),
        ];
        for (label, cfg) in shapes {
            let hh = HhRuntime::new(cfg);
            assert_eq!(
                hh.run(|ctx| run_timed(ctx, id, p)).checksum,
                expected,
                "{} on parmem {label}",
                id.name()
            );
            assert_eq!(
                hh.check_disentangled(),
                0,
                "{} entangled under {label}",
                id.name()
            );
        }
    }
}

/// §4.4: the pure `map` benchmark promotes nothing on the hierarchical runtime, while
/// the Manticore-style baseline promotes the data of stolen tasks.
#[test]
fn promotion_volume_shape_matches_the_paper() {
    let p = Params {
        scale: 0.001,
        grain: 256,
    };
    let hh = HhRuntime::with_workers(4);
    hh.run(|ctx| run_timed(ctx, BenchId::Map, p));
    assert_eq!(
        hh.stats().promoted_objects,
        0,
        "parmem must not promote on map"
    );

    // The DLG baseline's promotion comes from data built by stolen tasks. With a
    // flat-array sequence representation `map` builds nothing in its leaves, so the
    // effect shows on `msort-pure`, whose leaves allocate their partitions locally (see
    // EXPERIMENTS.md, E6). Run it a few times and require that at least one run with
    // several workers promotes something (steals are scheduling-dependent).
    let mut dlg_promoted = 0;
    for _ in 0..5 {
        let dlg = DlgRuntime::with_workers(4);
        dlg.run(|ctx| run_timed(ctx, BenchId::MsortPure, p));
        dlg_promoted += dlg.stats().promoted_words;
        if dlg_promoted > 0 {
            break;
        }
    }
    assert!(
        dlg_promoted > 0,
        "the DLG baseline should promote data built by stolen tasks on msort-pure"
    );
}

/// The imperative BFS variants exercise exactly the promotion machinery Figure 9
/// predicts: `usp` does not promote, `usp-tree` does.
#[test]
fn bfs_promotion_matches_figure9() {
    let p = Params {
        scale: 0.001,
        grain: 256,
    };
    let hh = HhRuntime::with_workers(4);
    hh.run(|ctx| run_timed(ctx, BenchId::Usp, p));
    assert_eq!(hh.stats().promoted_objects, 0, "usp must not promote");

    // Eager per-fork heaps for the usp-tree half: Figure 9 is about the benchmark's
    // representative *operation*, so the assertion must not depend on whether the
    // scheduler happened to steal (under the lazy steal-time heap policy an unstolen
    // leaf's tree-extension writes are same-heap and promote nothing).
    let hh2 = HhRuntime::new(HhConfig::eager_heaps(4));
    hh2.run(|ctx| run_timed(ctx, BenchId::UspTree, p));
    assert!(
        hh2.stats().promoted_objects > 0,
        "usp-tree must perform promoting writes"
    );
    assert_eq!(hh2.check_disentangled(), 0);
}

/// Garbage collection triggers under allocation pressure on every runtime that
/// implements it, without corrupting results.
#[test]
fn collections_happen_under_pressure_and_results_survive() {
    let p = Params {
        scale: 0.001,
        grain: 512,
    };
    // Small GC thresholds force collections during msort-pure (allocation heavy).
    // Eager per-fork heaps: every leaf owns its heap, so threshold collections are
    // deterministic; under the lazy policy only heap owners (root and stolen tasks)
    // collect, which is scheduling-dependent.
    let hh = HhRuntime::new(HhConfig {
        n_workers: 3,
        chunk_words: 1024,
        gc_threshold_words: 8_000,
        lazy_child_heaps: false,
        ..Default::default()
    });
    let seq = SeqRuntime::new();
    let expected = seq
        .run(|ctx| run_timed(ctx, BenchId::MsortPure, p))
        .checksum;
    let got = hh.run(|ctx| run_timed(ctx, BenchId::MsortPure, p)).checksum;
    assert_eq!(expected, got);
    assert!(
        hh.stats().gc_count > 0,
        "msort-pure with a small threshold must collect leaf heaps"
    );
}

// ---------------------------------------------------------------------------
// ParCtx v2: bulk operations are observationally equivalent to scalar loops.
// ---------------------------------------------------------------------------

/// Applies a deterministic random mix of scalar and bulk operations to two arrays and
/// returns both arrays' final contents. Run once with `use_bulk = false` (scalar loops
/// only) and once with `use_bulk = true`; the results must be identical on every
/// runtime.
type ArrayPair = (Vec<u64>, Vec<u64>);

fn random_op_mix<C: ParCtx>(ctx: &C, seed: u64, use_bulk: bool) -> ArrayPair {
    const LEN: usize = 257; // deliberately not a power of two
    let a = ctx.alloc_data_array(LEN);
    let b = ctx.alloc_data_array(LEN);
    let mut rng = Rng::new(seed);
    for _ in 0..40 {
        let start = (rng.next_u64() % (LEN as u64 - 1)) as usize;
        let len = 1 + (rng.next_u64() % (LEN - start) as u64) as usize;
        let op = rng.next_u64() % 4;
        match op {
            0 => {
                // Bulk write vs. scalar write loop.
                let vals: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
                if use_bulk {
                    ctx.write_nonptr_bulk(a, start, &vals);
                } else {
                    for (k, &v) in vals.iter().enumerate() {
                        ctx.write_nonptr(a, start + k, v);
                    }
                }
            }
            1 => {
                // Fill vs. scalar fill loop.
                let v = rng.next_u64();
                if use_bulk {
                    ctx.fill_nonptr(b, start, len, v);
                } else {
                    for k in 0..len {
                        ctx.write_nonptr(b, start + k, v);
                    }
                }
            }
            2 => {
                // Object→object copy vs. scalar copy loop.
                if use_bulk {
                    ctx.copy_nonptr(a, start, b, start, len);
                } else {
                    for k in 0..len {
                        let v = ctx.read_mut(a, start + k);
                        ctx.write_nonptr(b, start + k, v);
                    }
                }
            }
            _ => {
                // Read-modify-write through the bulk read vs. scalar reads.
                let mut buf = vec![0u64; len];
                if use_bulk {
                    ctx.read_mut_bulk(a, start, &mut buf);
                } else {
                    for (k, slot) in buf.iter_mut().enumerate() {
                        *slot = ctx.read_mut(a, start + k);
                    }
                }
                for x in buf.iter_mut() {
                    *x = x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
                }
                if use_bulk {
                    ctx.write_nonptr_bulk(a, start, &buf);
                } else {
                    for (k, &v) in buf.iter().enumerate() {
                        ctx.write_nonptr(a, start + k, v);
                    }
                }
            }
        }
    }
    let read_all = |obj: ObjPtr| -> Vec<u64> {
        let mut out = vec![0u64; LEN];
        if use_bulk {
            ctx.read_mut_bulk(obj, 0, &mut out);
        } else {
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = ctx.read_mut(obj, k);
            }
        }
        out
    };
    (read_all(a), read_all(b))
}

/// Property: on all four runtimes, a random mix of bulk operations leaves memory in
/// exactly the state the corresponding scalar loops would.
#[test]
fn bulk_ops_equal_scalar_loops_on_all_runtimes() {
    for seed in [1u64, 42, 0xC0FFEE] {
        let reference = SeqRuntime::new().run(|ctx| random_op_mix(ctx, seed, false));
        let runs: [(&str, ArrayPair); 4] = [
            (
                "seq",
                SeqRuntime::new().run(|ctx| random_op_mix(ctx, seed, true)),
            ),
            (
                "stw",
                StwRuntime::with_workers(3).run(|ctx| random_op_mix(ctx, seed, true)),
            ),
            (
                "dlg",
                DlgRuntime::with_workers(3).run(|ctx| random_op_mix(ctx, seed, true)),
            ),
            (
                "parmem",
                HhRuntime::with_workers(3).run(|ctx| random_op_mix(ctx, seed, true)),
            ),
        ];
        for (name, got) in runs {
            assert_eq!(
                got, reference,
                "bulk vs scalar mismatch on {name} (seed {seed})"
            );
        }
        // Scalar loops on the parallel runtimes agree too (sanity of the reference).
        let hh_scalar = HhRuntime::with_workers(3).run(|ctx| random_op_mix(ctx, seed, false));
        assert_eq!(
            hh_scalar, reference,
            "scalar mismatch on parmem (seed {seed})"
        );
    }
}

/// Property: bulk operations remain correct under concurrent promotion — a child task
/// bulk-writes an array that gets promoted mid-run, and the parent then reads the
/// values through the master copy.
#[test]
fn bulk_writes_survive_concurrent_promotion() {
    const LEN: usize = 300;
    for trial in 0..5u64 {
        // Eager per-fork heaps: the child below is the *left* (never stolen) branch,
        // so under the lazy policy it would run in the root heap and its publishing
        // write would correctly promote nothing.
        let rt = HhRuntime::new(HhConfig::eager_heaps(4));
        let (expected, got) = rt.run(|ctx| {
            let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
            let (vals, _) = ctx.join(
                |c| {
                    // The child allocates the array locally and seeds it.
                    let arr = c.alloc_data_array(LEN);
                    c.fill_nonptr(arr, 0, LEN, 7);
                    // Writing the array into the root-allocated cell promotes it: the
                    // child's `arr` pointer now leads to the master through a
                    // forwarding chain.
                    c.write_ptr(cell, 0, arr);
                    // Bulk-write through the stale pointer; the runtime must resolve
                    // the master once and land every word there.
                    let vals: Vec<u64> = (0..LEN as u64).map(|i| hash64(trial ^ i)).collect();
                    c.write_nonptr_bulk(arr, 0, &vals);
                    // And a bulk read through the stale pointer sees them.
                    let mut back = vec![0u64; LEN];
                    c.read_mut_bulk(arr, 0, &mut back);
                    assert_eq!(back, vals, "child read-back through forwarding chain");
                    vals
                },
                |_| (),
            );
            // The parent reads through the master copy.
            let master = ctx.read_mut_ptr(cell, 0);
            let mut out = vec![0u64; LEN];
            ctx.read_mut_bulk(master, 0, &mut out);
            (vals, out)
        });
        assert_eq!(
            got, expected,
            "parent must see the child's bulk writes (trial {trial})"
        );
        assert_eq!(rt.check_disentangled(), 0);
        let stats = rt.stats();
        assert!(
            stats.promoted_objects > 0,
            "the write_ptr must have promoted"
        );
        assert!(stats.bulk_ops > 0);
    }
}

/// A genuinely *racing* variant of the promotion test: one child continuously
/// bulk-writes uniform patterns into arrays it allocated, while its sibling
/// concurrently promotes those same arrays by publishing them into a root-allocated
/// cell (the array pointer crosses between the tasks through a Rust-side atomic, so
/// the promotion really does run while bulk writes are in flight).
///
/// The heap read lock held across each bulk slice must make every bulk operation
/// atomic with respect to the promotion copy (`write_promote` takes the exclusive
/// lock on the whole pointee→master path): every observer — the writer reading back
/// through its stale pointer, and the parent reading the master copy — must always
/// see a *uniform* array, never a torn half-pattern. A regression that dropped the
/// lock (or released it before the loop) shows up here as a torn read.
#[test]
fn bulk_writes_race_concurrent_promotion_without_tearing() {
    use std::sync::atomic::{AtomicU64, Ordering};
    const LEN: usize = 512;
    const ROUNDS: u64 = 30;
    const PATTERNS: u64 = 40;
    for trial in 0..3u64 {
        // Eager per-fork heaps, for the same reason as above: the writer is the left
        // branch and must allocate in its own heap for the promoter to have anything
        // to promote.
        let rt = HhRuntime::new(HhConfig::eager_heaps(4));
        let torn = rt.run(|ctx| {
            let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
            // Rust-side mailbox handing freshly allocated array pointers to the
            // promoter; `done` ends the promoter's spin loop.
            let mailbox = AtomicU64::new(0);
            let done = AtomicU64::new(0);
            let (mut torn, _) = ctx.join(
                |c| {
                    let mut torn = 0u64;
                    let mut back = vec![0u64; LEN];
                    for round in 0..ROUNDS {
                        let arr = c.alloc_data_array(LEN);
                        c.fill_nonptr(arr, 0, LEN, u64::MAX);
                        mailbox.store(arr.to_bits(), Ordering::Release);
                        for pat in 0..PATTERNS {
                            let val = trial << 32 | round << 16 | pat;
                            c.fill_nonptr(arr, 0, LEN, val);
                            c.read_mut_bulk(arr, 0, &mut back);
                            if back.windows(2).any(|w| w[0] != w[1]) {
                                torn += 1;
                            }
                        }
                    }
                    done.store(1, Ordering::Release);
                    torn
                },
                |c| {
                    // Promote whatever array the writer last published, as soon as
                    // it appears, while the writer keeps bulk-writing it.
                    let mut last = 0u64;
                    while done.load(Ordering::Acquire) == 0 {
                        let bits = mailbox.load(Ordering::Acquire);
                        if bits != 0 && bits != last {
                            last = bits;
                            c.write_ptr(cell, 0, ObjPtr::from_bits(bits));
                        }
                        std::hint::spin_loop();
                    }
                    // If this branch was not stolen (possible on a single-core
                    // machine: it then runs sequentially after the writer, with
                    // `done` already set), still promote the final array so the
                    // promotion assertions below hold under every schedule; when the
                    // race did happen this is a no-op-ish re-publication.
                    let bits = mailbox.load(Ordering::Acquire);
                    if bits != 0 {
                        c.write_ptr(cell, 0, ObjPtr::from_bits(bits));
                    }
                },
            );
            // The parent observes the last promoted array through the master copy.
            let master = ctx.read_mut_ptr(cell, 0);
            if !master.is_null() {
                let mut out = vec![0u64; LEN];
                ctx.read_mut_bulk(master, 0, &mut out);
                if out.windows(2).any(|w| w[0] != w[1]) {
                    torn += 1;
                }
            }
            torn
        });
        assert_eq!(
            torn, 0,
            "torn bulk slice under concurrent promotion (trial {trial})"
        );
        assert_eq!(rt.check_disentangled(), 0);
        assert!(
            rt.stats().promoted_objects > 0,
            "the promoter must have promoted at least one in-flight array (trial {trial})"
        );
    }
}

/// The acceptance property of the bulk redesign: the hierarchical runtime resolves
/// `findMaster` at most once per object operand of each bulk operation — i.e. at most
/// `2 * bulk_ops` lookups in total — independent of slice length.
#[test]
fn bulk_master_lookups_are_amortized_per_slice() {
    let p = tiny();
    for id in [
        BenchId::Map,
        BenchId::Tabulate,
        BenchId::Msort,
        BenchId::Smvm,
    ] {
        let rt = HhRuntime::with_workers(3);
        rt.run(|ctx| run_timed(ctx, id, p));
        let s = rt.stats();
        assert!(s.bulk_ops > 0, "{} should use bulk operations", id.name());
        assert!(
            s.bulk_master_lookups <= 2 * s.bulk_ops,
            "{}: {} master lookups for {} bulk ops — not amortized per slice",
            id.name(),
            s.bulk_master_lookups,
            s.bulk_ops
        );
        assert!(
            s.bulk_amortization() > 4.0,
            "{}: bulk ops moved only {:.1} words each on average",
            id.name(),
            s.bulk_amortization()
        );
    }
}

/// Scheduler v2 acceptance: the lazy steal-time heap policy is observationally
/// equivalent to the eager per-fork policy — same checksums on every benchmark, same
/// bulk/scalar equivalence, clean disentanglement — while actually eliding heaps on
/// every fork-join workload.
#[test]
fn lazy_heap_policy_is_observationally_equivalent_and_elides_heaps() {
    let p = tiny();
    let deterministic: Vec<BenchId> = BenchId::ALL
        .into_iter()
        .filter(|b| *b != BenchId::Reachability) // benign race ⇒ nondeterministic count
        .collect();
    for id in deterministic {
        let eager = HhRuntime::new(HhConfig::eager_heaps(3));
        let expected = eager.run(|ctx| run_timed(ctx, id, p)).checksum;
        assert_eq!(
            eager.check_disentangled(),
            0,
            "{} entangled (eager)",
            id.name()
        );
        assert_eq!(eager.stats().heaps_elided, 0, "{} eager elided", id.name());

        let lazy = HhRuntime::with_workers(3);
        assert_eq!(
            lazy.run(|ctx| run_timed(ctx, id, p)).checksum,
            expected,
            "{}: lazy vs eager checksum",
            id.name()
        );
        assert_eq!(
            lazy.check_disentangled(),
            0,
            "{} entangled (lazy)",
            id.name()
        );
        let s = lazy.stats();
        // Every fork either created heaps (stolen) or elided them; with a tiny scale
        // every benchmark still forks at least once, so elisions must show up.
        assert!(
            s.heaps_elided > 0,
            "{}: lazy policy elided no heaps (created {})",
            id.name(),
            s.heaps_created
        );
        // Conservation: two heap slots per fork, split between created and elided.
        assert_eq!(
            (s.heaps_created - 1 + s.heaps_elided) % 2,
            0,
            "{}: created+elided must cover forks exactly",
            id.name()
        );
    }

    // The bulk/scalar equivalence property holds under the lazy policy too.
    let reference = SeqRuntime::new().run(|ctx| random_op_mix(ctx, 7, false));
    let lazy = HhRuntime::with_workers(3).run(|ctx| random_op_mix(ctx, 7, true));
    assert_eq!(lazy, reference, "lazy bulk vs scalar mismatch");
}

/// The facade's quickstart doc example, kept in sync as a real test.
#[test]
fn facade_quickstart_compiles_and_runs() {
    use hierheap::{ObjPtr, ParCtx};
    let rt = HhRuntime::with_workers(2);
    let value = rt.run(|ctx| {
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        ctx.join(
            |c| {
                let local = c.alloc_ref_data(41);
                c.write_ptr(shared, 0, local);
            },
            |_| (),
        );
        let p = ctx.read_mut_ptr(shared, 0);
        ctx.read_mut(p, 0) + 1
    });
    assert_eq!(value, 42);
}
