//! GC v2 acceptance tests: the parallel zone collector must be observably
//! equivalent to the serial (`gc_workers = 1`, ablation A4) collector — same
//! workload checksums, zero entanglement, comparable footprint — on the
//! mutator-heavy and adversarial workloads under tiny GC thresholds, and the
//! team counters must fire when a team is configured.

use hierheap::workloads::adversary::entangle;
use hierheap::workloads::mutator::{frontier_bfs, lru_churn, union_find};
use hierheap::workloads::wavefront::wavefront;
use hierheap::{HhConfig, HhRuntime, ObjPtr, ParCtx, Runtime};

/// Tiny chunks and GC thresholds so collections fire constantly, on a pool big
/// enough that a team actually has members to draft.
///
/// The threshold must stay below what one *stolen* task of the smallest workload
/// allocates on its own (~7.5K words for an lru-churn task): when every task is
/// stolen into a private heap — likely on a loaded machine — no heap sees the
/// other tasks' allocation, and a threshold above the per-task volume would let
/// the whole run finish without a single collection.
fn cfg(gc_workers: usize) -> HhConfig {
    HhConfig {
        n_workers: 4,
        gc_workers,
        chunk_words: 256,
        gc_threshold_words: 4 * 1024,
        check_invariants: true,
        ..HhConfig::default()
    }
}

/// Runs `work` under the serial collector and under a team of 8 (clamped to the
/// pool), asserting checksum equality, no entanglement, collections on both
/// sides, and that the parallel run's resident footprint stays within a small
/// factor of the serial run's (parallel evacuation wastes bounded words on
/// per-member partial chunks and CAS-race fillers, never unbounded ones).
fn assert_equivalent(work: impl Fn(&hierheap::HhCtx) -> u64 + Send + Copy) {
    // Borrower collections are best-effort (skipped whenever a stolen ancestor
    // holds the steal gate), so under adversarial scheduling — e.g. a loaded CI
    // machine where a stolen task stays in flight across every task's threshold
    // check — a run can legitimately finish with zero mid-run collections. The
    // root is an owner (never gated) and its heap absorbs all joined
    // allocation, so one final root-level threshold check makes `gc_count > 0`
    // deterministic without forcing a collection that thresholds didn't earn.
    let work = move |ctx: &hierheap::HhCtx| {
        let sum = work(ctx);
        ctx.maybe_collect();
        sum
    };
    let serial = HhRuntime::new(cfg(1));
    let serial_sum = serial.run(work);
    assert_eq!(
        serial.check_disentangled(),
        0,
        "serial run left entanglement"
    );
    let s = serial.stats();
    assert!(s.gc_count > 0, "thresholds must force collections");
    assert_eq!(
        s.gc_parallel_collections, 0,
        "gc_workers=1 must not form teams"
    );

    let parallel = HhRuntime::new(cfg(8));
    let parallel_sum = parallel.run(work);
    assert_eq!(
        parallel.check_disentangled(),
        0,
        "parallel run left entanglement"
    );
    let p = parallel.stats();
    assert_eq!(serial_sum, parallel_sum, "gc_workers=1 ≢ gc_workers=N");
    assert!(p.gc_count > 0, "thresholds must force collections");
    assert_eq!(
        p.gc_parallel_collections, p.gc_count,
        "every collection must run in team mode when a team is configured"
    );
    assert!(
        p.live_words <= s.live_words * 4 + 64 * 1024,
        "parallel collector footprint blew up: {} vs serial {}",
        p.live_words,
        s.live_words
    );
}

#[test]
fn serial_and_parallel_gc_agree_on_union_find() {
    assert_equivalent(|ctx| union_find(ctx, 3_000, 4_000, 256, 0xDEAD));
}

#[test]
fn serial_and_parallel_gc_agree_on_bfs_frontier() {
    assert_equivalent(|ctx| frontier_bfs(ctx, 2_000, 6, 128, 0xBEEF));
}

#[test]
fn serial_and_parallel_gc_agree_on_lru_churn() {
    assert_equivalent(|ctx| lru_churn(ctx, 8, 4_000, 64, 2_048, 0xF00D));
}

#[test]
fn serial_and_parallel_gc_agree_on_wavefront() {
    assert_equivalent(|ctx| wavefront(ctx, 64, 64, 48, 16, 0x7A3E));
}

#[test]
fn serial_and_parallel_gc_agree_on_entangle() {
    // 70% of ops cross subtrees: promotion traffic interleaves with the
    // constantly firing collections on both collector shapes.
    assert_equivalent(|ctx| entangle(ctx, 8, 4_000, 700, 0xAD55));
}

/// A forced collection of a large live set under a configured team bumps the
/// team counters, survives intact, and reports a max pause.
#[test]
fn forced_team_collection_preserves_live_data_and_counts() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 4,
        gc_workers: 4,
        chunk_words: 256,
        gc_threshold_words: usize::MAX / 2, // only the forced collection runs
        check_invariants: true,
        ..HhConfig::default()
    });
    rt.run(|ctx| {
        // A pinned list of 4000 cells plus plenty of garbage.
        let mut head = ObjPtr::NULL;
        for k in 0..4_000u64 {
            head = ctx.alloc_cons(ObjPtr::NULL, head, k);
            for _ in 0..2 {
                let _junk = ctx.alloc_data_array(16);
            }
        }
        ctx.pin(head);
        assert!(ctx.force_collect());
        // The list survived the evacuation in order.
        let mut cur = head;
        // `head` itself was a stale pointer rewritten in the pin set; re-read it.
        assert_eq!(ctx.root_count(), 1);
        let mut expect = 4_000u64;
        // Walk through the forwarded root: read_imm on the (possibly stale) head
        // still resolves because retired chunks stay readable, but the pinned slot
        // was rewritten — walk from the stale head through forwarding-safe reads.
        while !cur.is_null() {
            expect -= 1;
            assert_eq!(ctx.read_imm(cur, 2), expect);
            cur = ctx.read_imm_ptr(cur, 1);
        }
        assert_eq!(expect, 0);
        // `head` is the stale from-space address while the pin slot holds the
        // rewritten to-space one; unpin must resolve through forwarding so
        // pin/unpin stays balanced across collections.
        ctx.unpin(head);
        assert_eq!(
            ctx.root_count(),
            0,
            "stale-pointer unpin left the pin behind"
        );
    });
    let s = rt.stats();
    assert!(s.gc_count >= 1);
    assert_eq!(s.gc_parallel_collections, s.gc_count);
    assert!(s.gc_copied_words >= 4_000 * 5, "live list must be copied");
    assert!(s.gc_max_pause_ns > 0, "max pause must be recorded");
    assert_eq!(rt.check_disentangled(), 0);
}

/// The STW baseline's global collection now drafts its safepoint-parked workers:
/// under allocation pressure the team counter fires and results stay correct.
#[test]
fn stw_collections_run_in_team_mode() {
    use hierheap::StwRuntime;
    let rt = StwRuntime::with_params(4, 256, 20_000, true);
    let total = rt.run(|ctx| {
        fn churn<C: ParCtx>(c: &C, depth: usize, keep: ObjPtr) -> u64 {
            if depth == 0 {
                for _ in 0..50 {
                    let _g = c.alloc_data_array(64);
                }
                return c.read_mut(keep, 0);
            }
            let (a, b) = c.join(|c| churn(c, depth - 1, keep), |c| churn(c, depth - 1, keep));
            a + b
        }
        let keep = ctx.alloc_ref_data(3);
        ctx.pin(keep);
        churn(ctx, 4, keep)
    });
    assert_eq!(total, 3 * 16);
    let s = rt.stats();
    assert!(s.gc_count >= 1, "pressure must force a collection");
    assert_eq!(
        s.gc_parallel_collections, s.gc_count,
        "every STW collection must draft its parked workers"
    );
    assert!(s.gc_max_pause_ns > 0);
}
