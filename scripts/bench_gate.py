#!/usr/bin/env python3
"""Benchmark regression gate: diff two committed BENCH_*.json artifacts.

Usage: scripts/bench_gate.py BASELINE.json CANDIDATE.json

Both files are JSON-lines as emitted by `serve --json` and `repro gc --json`.
Lines are matched by identity key (experiment / runtime / mode / benchmark /
scale); for every pair present in both files the named metrics below are
compared and the gate exits 1 if any regresses by more than TOLERANCE.

Robustness rules (all logged, nothing silently dropped):
  * A metric the baseline measured but the candidate lacks FAILS the gate
    (`MISSING`): a candidate artifact that silently dropped a measurement is a
    hole, not a pass — this is how a gated metric regression hides. A metric
    only the candidate has is fine (schemas grow across PRs), as is a zero
    baseline value (zero means "didn't fire", not "fast").
  * Timed metrics (throughput, latency percentiles, pauses) are skipped when
    either side's run lasted under MIN_ELAPSED_S wall-clock: a serve smoke that
    finishes in 30 ms has run-to-run throughput variance far beyond any useful
    tolerance, and gating on it would make every PR a coin flip.
  * ns_per_copied_word is skipped unless both sides copied a substantial
    number of words — a run with one tiny collection divides by ~nothing.
  * p999_us is skipped when either side has under MIN_P999_RUNS samples: with
    nearest-rank percentiles, p999 of 300 runs is literally the maximum — a
    heavy-tailed max-statistic that swings 3x between identical runs.
New lines (no baseline counterpart) pass; the gate only guards metrics that
both artifacts actually measured.
"""

import json
import sys

TOLERANCE = 0.15  # >15% regression of a named metric fails the gate
MIN_ELAPSED_S = 0.5  # timed comparisons need runs at least this long
MIN_COPIED_WORDS = 10_000  # ns/copied-word needs a real copy volume
MIN_P999_RUNS = 1000  # fewer samples make nearest-rank p999 the max sample

# metric -> direction ("higher" = bigger is better, "lower" = smaller is better)
METRICS = {
    "throughput_rps": "higher",
    "p999_us": "lower",
    "gc_max_pause_ns": "lower",
    "gc_pause_p999_ns": "lower",
    "ns_per_copied_word": "lower",
    # Adversarial workloads (repro adversarial): wavefront cost per grid cell
    # and entangle cost per promoted object.
    "ns_per_cell": "lower",
    "promote_ns_per_obj": "lower",
}
TIMED = {
    "throughput_rps",
    "p999_us",
    "gc_max_pause_ns",
    "gc_pause_p999_ns",
    "ns_per_cell",
    "promote_ns_per_obj",
}


def load(path):
    lines = {}
    with open(path) as f:
        for ln, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            d = json.loads(raw)
            key = (
                d.get("experiment", "?"),
                d.get("runtime", "?"),
                d.get("mode", d.get("benchmark", "?")),
                # serve lines: which workload the run pinned ("mix" = the
                # seed-dispatched default, and the value for artifacts that
                # predate the field).
                d.get("workload", "mix"),
                d.get("scale", 1),
            )
            if key in lines:
                print(f"note: {path}:{ln} duplicates key {key}; keeping last")
            lines[key] = d
    return lines


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    base_path, cand_path = sys.argv[1], sys.argv[2]
    base, cand = load(base_path), load(cand_path)

    failures = []
    compared = skipped = 0
    for key in sorted(cand, key=str):
        if key not in base:
            print(f"NEW      {key} (no baseline line — not gated)")
            continue
        b, c = base[key], cand[key]
        for metric, direction in METRICS.items():
            if metric not in b:
                # Only the candidate has it: schema growth, not gated. This is
                # how the serve failure-model counters (requested/aborted/
                # retried/rejected/deadline_hits/failed, DESIGN.md §13) enter
                # the JSON artifacts: informational fields for forensics and
                # trend-watching, never regression-gated — an abort count is a
                # property of the injected fault plan, not a performance metric.
                continue
            if metric not in c:
                print(f"MISSING  {key} {metric}: baseline measured it, candidate lacks it")
                failures.append((key, metric, float(b[metric]), float("nan")))
                continue
            bv, cv = float(b[metric]), float(c[metric])
            if bv == 0.0:
                continue
            if metric in TIMED and (
                float(b.get("elapsed_s", 0.0)) < MIN_ELAPSED_S
                or float(c.get("elapsed_s", 0.0)) < MIN_ELAPSED_S
            ):
                print(f"SKIP     {key} {metric}: run under {MIN_ELAPSED_S}s, too noisy")
                skipped += 1
                continue
            if metric == "ns_per_copied_word" and (
                int(b.get("gc_copied_words", 0)) < MIN_COPIED_WORDS
                or int(c.get("gc_copied_words", 0)) < MIN_COPIED_WORDS
            ):
                print(f"SKIP     {key} {metric}: under {MIN_COPIED_WORDS} copied words")
                skipped += 1
                continue
            if metric == "p999_us" and (
                int(b.get("runs", MIN_P999_RUNS)) < MIN_P999_RUNS
                or int(c.get("runs", MIN_P999_RUNS)) < MIN_P999_RUNS
            ):
                print(
                    f"SKIP     {key} {metric}: under {MIN_P999_RUNS} runs, "
                    "nearest-rank p999 degenerates to the max sample"
                )
                skipped += 1
                continue
            compared += 1
            ratio = cv / bv
            regressed = ratio > 1.0 + TOLERANCE if direction == "lower" else ratio < 1.0 - TOLERANCE
            verdict = "REGRESS " if regressed else "ok      "
            print(f"{verdict} {key} {metric}: {bv:.1f} -> {cv:.1f} ({ratio:.2f}x, {direction} is better)")
            if regressed:
                failures.append((key, metric, bv, cv))

    print(f"\n{compared} comparison(s), {skipped} skipped, {len(failures)} regression(s)")
    if failures:
        for key, metric, bv, cv in failures:
            if cv != cv:  # NaN marks a metric the candidate failed to measure
                print(f"FAIL: {key} {metric} missing from candidate (baseline {bv:.1f})")
            else:
                print(f"FAIL: {key} {metric} regressed {bv:.1f} -> {cv:.1f} (>{TOLERANCE:.0%})")
        return 1
    print(f"gate passed: {cand_path} holds the line against {base_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
