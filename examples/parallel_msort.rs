//! Parallel imperative mergesort (the paper's Figure 1) compared across runtimes.
//!
//! Sorts a hash-random sequence with the imperative `msort` (in-place quicksort below
//! the grain) on the sequential baseline and on the hierarchical runtime, and reports
//! times, speedup, and memory statistics. Run with:
//!
//! ```text
//! cargo run --release --example parallel_msort -- [n] [workers]
//! ```

use hierheap::workloads::seq::{random_input, MSeq};
use hierheap::workloads::sort::{is_sorted, msort};
use hierheap::{HhRuntime, ParCtx, Runtime, SeqRuntime};
use std::time::Instant;

const GRAIN: usize = 4096;

fn sort_and_check<C: ParCtx>(ctx: &C, n: usize) -> (MSeq, bool) {
    let input = random_input(ctx, n, GRAIN, 42);
    let sorted = msort(ctx, input, GRAIN);
    let ok = is_sorted(ctx, sorted);
    (sorted, ok)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    });

    println!("sorting {n} random 64-bit keys (grain {GRAIN})");

    // Sequential baseline.
    let seq = SeqRuntime::new();
    let t0 = Instant::now();
    let seq_ok = seq.run(|ctx| sort_and_check(ctx, n).1);
    let t_seq = t0.elapsed();
    println!("seq      : {:>8.3}s  sorted={seq_ok}", t_seq.as_secs_f64());

    // Hierarchical runtime.
    let hh = HhRuntime::with_workers(workers);
    let t0 = Instant::now();
    let hh_ok = hh.run(|ctx| sort_and_check(ctx, n).1);
    let t_hh = t0.elapsed();
    let stats = hh.stats();
    println!(
        "parmem x{workers}: {:>8.3}s  sorted={hh_ok}  speedup={:.2}  gc={} collections  promoted={} objects",
        t_hh.as_secs_f64(),
        t_seq.as_secs_f64() / t_hh.as_secs_f64(),
        stats.gc_count,
        stats.promoted_objects,
    );
    assert!(seq_ok && hh_ok);
    assert_eq!(hh.check_disentangled(), 0);
}
