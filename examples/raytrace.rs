//! Renders the raytracer benchmark's sphere scene in parallel and writes a PPM image.
//!
//! ```text
//! cargo run --release --example raytrace -- [side] [workers] [output.ppm]
//! ```

use hierheap::workloads::ray::render;
use hierheap::workloads::seq::MSeq;
use hierheap::{HhRuntime, Runtime};
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    });
    let out_path = args.next().unwrap_or_else(|| "raytrace.ppm".to_string());

    let rt = HhRuntime::with_workers(workers);
    let t0 = Instant::now();
    let pixels: Vec<u64> = rt.run(|ctx| {
        let img: MSeq = render(ctx, side, side, 300.min(side * side));
        img.to_vec(ctx)
    });
    let elapsed = t0.elapsed();
    println!(
        "rendered {side}x{side} pixels on {workers} workers in {:.3}s",
        elapsed.as_secs_f64()
    );

    // Write a binary PPM.
    let mut data = Vec::with_capacity(side * side * 3 + 64);
    data.extend_from_slice(format!("P6\n{side} {side}\n255\n").as_bytes());
    for p in &pixels {
        data.push(((p >> 16) & 0xFF) as u8);
        data.push(((p >> 8) & 0xFF) as u8);
        data.push((p & 0xFF) as u8);
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(&data)) {
        Ok(()) => println!("wrote {out_path} ({} bytes)", data.len()),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
