//! Quickstart: the entanglement scenario of the paper's §2, on the hierarchical runtime.
//!
//! A mutable reference is allocated by the parent task and both children use it: one
//! writes a locally allocated record into it (which would create a down-pointer, so the
//! runtime promotes the record), the other reads whatever it sees. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hierheap::{HhConfig, HhRuntime, ObjKind, ObjPtr, ParCtx, Runtime};

fn main() {
    // Eager per-fork child heaps, so the promotion shown below happens regardless of
    // whether the scheduler steals: under the default lazy steal-time heap policy
    // (`HhConfig::lazy_child_heaps`) an unstolen child runs in the parent's heap and
    // its publishing write is an ordinary same-heap store — the promotion machinery
    // only pays off when tasks actually ran in parallel.
    let rt = HhRuntime::new(HhConfig::eager_heaps(4));

    let observed = rt.run(|ctx| {
        // A mutable ref cell, allocated at the root of the heap hierarchy.
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);

        let (_, seen_by_sibling) = ctx.join(
            |c| {
                // Child 1: build a small record locally and publish it through the
                // shared ref. The pointer write promotes the record (and everything it
                // reaches) into the root heap so the hierarchy stays disentangled.
                let record = c.alloc(0, 2, ObjKind::ArrayData);
                c.write_nonptr(record, 0, 2018);
                c.write_nonptr(record, 1, 0xC0FFEE);
                c.write_ptr(shared, 0, record);
            },
            |c| {
                // Child 2: read the ref. Depending on scheduling it sees NULL or the
                // promoted record — never a torn or entangled value.
                let p = c.read_mut_ptr(shared, 0);
                if p.is_null() {
                    None
                } else {
                    Some((c.read_mut(p, 0), c.read_mut(p, 1)))
                }
            },
        );

        // After the join the parent always sees the published record.
        let p = ctx.read_mut_ptr(shared, 0);
        let final_value = (ctx.read_mut(p, 0), ctx.read_mut(p, 1));
        (seen_by_sibling, final_value)
    });

    println!("sibling observed:    {:?}", observed.0);
    println!(
        "parent observes:     ({}, {:#x})",
        observed.1 .0, observed.1 .1
    );

    let stats = rt.stats();
    println!(
        "promotions:          {} objects, {} bytes",
        stats.promoted_objects,
        stats.promoted_bytes()
    );
    println!("heaps created:       {}", stats.heaps_created);
    println!("disentanglement violations: {}", rt.check_disentangled());
    assert_eq!(observed.1, (2018, 0xC0FFEE));
    assert_eq!(rt.check_disentangled(), 0);
}
