//! Parallel BFS over a synthetic power-law graph: the `usp` and `usp-tree` benchmarks.
//!
//! `usp` records only distances (distant non-pointer writes); `usp-tree` additionally
//! records the full shortest-path tree as per-vertex ancestor lists, which requires
//! promoting writes — the workload where promotion cost dominates (§4.4, §5 of the
//! paper). Run with:
//!
//! ```text
//! cargo run --release --example graph_bfs -- [vertices] [workers]
//! ```

use hierheap::workloads::graph::{ancestor_list_len, bfs, generate, BfsState, BfsVariant};
use hierheap::{HhConfig, HhRuntime, Runtime};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    });

    // Eager per-fork heaps so the promotion counts below reflect usp-tree's
    // representative operation independent of how many forks were stolen (under the
    // default lazy steal-time heap policy an unstolen leaf promotes nothing).
    let rt = HhRuntime::new(HhConfig::eager_heaps(workers));
    let report = rt.run(|ctx| {
        let g = generate(ctx, n, 12, 2048, 7);
        println!("graph: {} vertices, {} edges", g.n, g.m);

        // usp: unweighted single-source shortest path lengths.
        let usp_state = BfsState::new(ctx, g.n, BfsVariant::Usp);
        let t0 = Instant::now();
        let visited = bfs(ctx, &g, &usp_state, 0, 64);
        let t_usp = t0.elapsed();

        // usp-tree: all shortest paths, recorded as ancestor lists.
        let tree_state = BfsState::new(ctx, g.n, BfsVariant::UspTree);
        let t0 = Instant::now();
        let visited_tree = bfs(ctx, &g, &tree_state, 0, 64);
        let t_tree = t0.elapsed();

        // Validate: ancestor list length equals the recorded distance.
        let mut checked = 0usize;
        for v in (0..g.n).step_by((g.n / 200).max(1)) {
            if usp_state.visited.get_mut(ctx, v) == 1 && v != 0 {
                assert_eq!(
                    ancestor_list_len(ctx, &tree_state, v) as u64,
                    tree_state.dist.get_mut(ctx, v),
                    "ancestor list of vertex {v}"
                );
                checked += 1;
            }
        }
        let max_dist = (0..g.n)
            .filter(|&v| usp_state.visited.get_mut(ctx, v) == 1)
            .map(|v| usp_state.dist.get_mut(ctx, v))
            .max()
            .unwrap_or(0);
        (visited, visited_tree, t_usp, t_tree, max_dist, checked)
    });

    let (visited, visited_tree, t_usp, t_tree, max_dist, checked) = report;
    println!(
        "usp      : visited {visited} vertices in {:.3}s (max distance {max_dist})",
        t_usp.as_secs_f64()
    );
    println!(
        "usp-tree : visited {visited_tree} vertices in {:.3}s",
        t_tree.as_secs_f64()
    );
    println!("validated ancestor lists for {checked} sampled vertices");
    let stats = rt.stats();
    println!(
        "promotions: {} objects / {} bytes (usp-tree's distant pointer writes)",
        stats.promoted_objects,
        stats.promoted_bytes()
    );
    assert_eq!(rt.check_disentangled(), 0);
}
